"""Live pool monitoring: heartbeats, the sweep poller, and ``status``.

A long ``--jobs N`` sweep used to be a black box until the manifest was
written. This module opens three windows into a running fleet:

- **Heartbeats** (worker side): every executing run writes a small JSON
  file ``<cache-dir>/heartbeats/<hash12>.json`` at a configurable
  cadence (default 1 s of wall time) carrying the run's phase, its
  simulated time, and instruction counts. Writes are atomic
  (``tmp`` + ``os.replace``), so a reader never sees a torn file, and a
  final beat with phase ``done``/``error`` marks completion. The writer
  is a daemon thread sampling the worker's live machine (registered via
  :func:`repro.sim.system.add_machine_observer`); it only *reads*
  scheduler time and stats counters, so the simulation stays
  bit-identical.

- **The pool poller** (:class:`PoolMonitor`): while an
  :class:`~repro.experiments.pool.ExperimentPool` executes, a thread
  aggregates heartbeats + completion counts into a single live TTY
  progress line (lithops-style job monitor).

- **``leviathan-repro status <dir>``** (:func:`render_status`): tails
  the heartbeats and the manifest journal of a sweep *from another
  terminal*, reporting per-run progress, completed/cached/failed
  counts, and stale workers (heartbeat older than
  ``STALE_AFTER_INTERVALS`` x its own cadence -- the signature of a
  hung or killed worker).
"""

import json
import os
import sys
import threading
import time

from repro.sim.system import add_machine_observer, remove_machine_observer
from repro.sim.telemetry.log import get_logger

_log = get_logger("monitor")

#: Heartbeat payload layout version.
HEARTBEAT_SCHEMA = 1

#: Subdirectory of the cache dir holding one heartbeat file per run.
HEARTBEAT_DIRNAME = "heartbeats"

#: Default seconds between beats.
DEFAULT_INTERVAL = 1.0

#: A live-phase heartbeat older than this many intervals is stale.
STALE_AFTER_INTERVALS = 5.0

#: Phases that mark a heartbeat as finished rather than live.
TERMINAL_PHASES = ("done", "error")


def heartbeat_dir(root):
    return os.path.join(root, HEARTBEAT_DIRNAME)


def heartbeat_path(root, run_hash):
    """The heartbeat file of one run under sweep directory ``root``."""
    return os.path.join(heartbeat_dir(root), f"{run_hash[:12]}.json")


def read_heartbeat(root, run_hash):
    """One run's parsed heartbeat, or None (missing/torn/foreign)."""
    try:
        with open(heartbeat_path(root, run_hash)) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if isinstance(payload, dict) and payload.get("kind") == "leviathan-heartbeat":
        return payload
    return None


def sweep_heartbeats(root, finished_hashes=()):
    """Heartbeat hygiene: drop files of finished runs; returns count.

    Removes every heartbeat whose phase is terminal (``done``/
    ``error``) or whose hash appears in ``finished_hashes`` (manifest
    ground truth). The pool calls this at start and on clean finish so
    ``leviathan-repro status`` never reports ghosts from a prior
    sweep. Live beats of other hashes are left alone -- a concurrent
    sweep sharing the cache dir keeps its in-flight runs visible.
    """
    short = {h[:12] for h in finished_hashes if h}
    removed = 0
    for beat in read_heartbeats(root):
        digest = beat.get("hash") or ""
        if beat.get("phase") in TERMINAL_PHASES or digest[:12] in short:
            try:
                os.unlink(heartbeat_path(root, digest))
                removed += 1
            except OSError:
                pass
    if removed:
        _log.info("heartbeats.swept", extra={"root": root, "removed": removed})
    return removed


#: Stack of this process's live writers; the top is the current run's.
_active_writers = []


def current_heartbeat():
    """The executing run's :class:`HeartbeatWriter`, or None.

    Test hook (also used by chaos workloads): lets a running spec
    reach its own writer, e.g. to :meth:`~HeartbeatWriter.suspend`
    beats and simulate a hung worker.
    """
    return _active_writers[-1] if _active_writers else None


# ----------------------------------------------------------------------
# worker side: the heartbeat writer
# ----------------------------------------------------------------------
class HeartbeatWriter:
    """Beat one run's progress into ``<dir>/<hash12>.json``.

    The writer observes every machine its worker process builds while
    running (the run's simulator, usually exactly one) and samples the
    most recent one's scheduler clock and instruction counters --
    read-only, cross-thread, which CPython's GIL makes safe for the
    plain attribute and dict reads involved.
    """

    def __init__(self, directory, run_hash, label, interval=DEFAULT_INTERVAL):
        self.directory = directory
        self.run_hash = run_hash
        self.label = label
        self.interval = max(0.05, float(interval))
        self.path = os.path.join(directory, f"{run_hash[:12]}.json")
        self.phase = "setup"
        self.started = time.time()
        self._machines = []
        self._suspended = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{run_hash[:12]}", daemon=True
        )

    # -- lifecycle ------------------------------------------------------
    def start(self):
        os.makedirs(self.directory, exist_ok=True)
        add_machine_observer(self._on_machine)
        _active_writers.append(self)
        self.beat()
        self._thread.start()
        return self

    def stop(self, phase="done"):
        """Final beat with a terminal phase; the thread exits."""
        remove_machine_observer(self._on_machine)
        if self in _active_writers:
            _active_writers.remove(self)
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2 * self.interval)
        self._suspended = False
        self.beat(phase=phase)
        return self

    def suspend(self):
        """Stop beating without stopping the run (hang simulation).

        Periodic beats are skipped until :meth:`stop`; to the pool's
        hang detector this run now looks exactly like a worker that
        livelocked or was SIGSTOPped mid-simulation.
        """
        self._suspended = True
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, *exc):
        self.stop(phase="error" if exc_type is not None else "done")
        return False

    def _on_machine(self, machine):
        self._machines.append(machine)

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except OSError:
                pass  # a beat must never kill the run it observes

    # -- the beat -------------------------------------------------------
    def sample(self):
        """The live progress fields read off the newest machine."""
        if not self._machines:
            return {"sim_time": None, "instructions": None, "machines": 0}
        machine = self._machines[-1]
        counters = machine.stats.counters
        sampled = {
            "sim_time": machine.scheduler.now,
            "instructions": counters.get("core.instructions", 0)
            + counters.get("engine.instructions", 0),
            "machines": len(self._machines),
        }
        request_p95 = _live_request_p95(machine)
        if request_p95:
            sampled["request_p95"] = request_p95
        return sampled

    def beat(self, phase=None):
        if self._suspended and phase is None:
            return None
        if phase is not None:
            self.phase = phase
        now = time.time()
        payload = {
            "schema": HEARTBEAT_SCHEMA,
            "kind": "leviathan-heartbeat",
            "hash": self.run_hash,
            "label": self.label,
            "pid": os.getpid(),
            "phase": self.phase,
            "interval": self.interval,
            "started": self.started,
            "updated": now,
            "elapsed": now - self.started,
        }
        payload.update(self.sample())
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, self.path)
        return payload


def _live_request_p95(machine):
    """Per-request-class p95 off the machine's live telemetry, or None.

    Only available when a telemetry session is installed (the
    ``--telemetry-out`` sweep path): the session's registry holds the
    ``request.latency.<class>`` histograms. Reads race the simulation
    thread by design -- plain dict/attribute reads under the GIL -- so
    any torn iteration is simply skipped until the next beat.
    """
    from repro.sim.telemetry.session import active_session

    session = active_session()
    if session is None:
        return None
    try:
        for telemetry in reversed(session.telemetries):
            if telemetry.machine is not machine:
                continue
            out = {}
            for name in telemetry.metrics.names():
                cls = name.partition("request.latency.")[2]
                if not cls:
                    continue
                snap = telemetry.metrics.value(name)
                if snap and snap.get("count"):
                    out[cls] = snap["p95"]
            return out or None
    except RuntimeError:
        pass  # registry mutated mid-iteration; next beat retries
    return None


# ----------------------------------------------------------------------
# reader side: heartbeats + manifest -> sweep state
# ----------------------------------------------------------------------
def read_heartbeats(root):
    """Every parseable heartbeat under ``root`` (torn files skipped)."""
    directory = heartbeat_dir(root)
    beats = []
    try:
        names = sorted(os.listdir(directory))
    except (FileNotFoundError, NotADirectoryError):
        return beats
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue  # mid-replace or torn: the next poll will see it
        if isinstance(payload, dict) and payload.get("kind") == "leviathan-heartbeat":
            beats.append(payload)
    return beats


def read_manifest(root):
    """Manifest entries under ``root`` (torn final line tolerated)."""
    entries = []
    try:
        with open(os.path.join(root, "manifest.jsonl")) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue  # killed mid-append
    except FileNotFoundError:
        pass
    return entries


def summarize_sweep(root, now=None):
    """The live state of one sweep directory, machine-readable.

    Manifest entries are ground truth for finished runs; heartbeats
    cover the in-flight ones. A run with a live-phase heartbeat *and* a
    manifest entry is finished (the worker died before its final beat,
    or the beat lost the race) -- the manifest wins.
    """
    now = time.time() if now is None else now
    manifest = read_manifest(root)
    finished_hashes = {entry.get("hash") for entry in manifest}
    counts = {"ok": 0, "error": 0, "cached": 0}
    retries = 0
    for entry in manifest:
        retries += max(0, int(entry.get("attempts", 1) or 1) - 1)
        if entry.get("cached"):
            counts["cached"] += 1
        elif entry.get("status") == "ok":
            counts["ok"] += 1
        else:
            counts["error"] += 1
    running, stale, finished_beats = [], [], []
    for beat in read_heartbeats(root):
        if beat.get("phase") in TERMINAL_PHASES or beat.get("hash") in finished_hashes:
            finished_beats.append(beat)
            continue
        age = now - beat.get("updated", 0)
        horizon = STALE_AFTER_INTERVALS * beat.get("interval", DEFAULT_INTERVAL)
        (stale if age > horizon else running).append(dict(beat, age=age))
    failures = [entry for entry in manifest if entry.get("status") not in (None, "ok")]
    return {
        "root": root,
        "exists": os.path.isdir(root),
        "manifest_entries": len(manifest),
        "counts": counts,
        "retries": retries,
        "running": running,
        "stale": stale,
        "finished_heartbeats": len(finished_beats),
        "failures": failures[-5:],
    }


def _fmt_sim_time(value):
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _beat_line(beat):
    line = (
        f"{beat.get('label', '?')}  phase={beat.get('phase', '?')}"
        f"  t={_fmt_sim_time(beat.get('sim_time'))}"
        f"  up {beat.get('elapsed', 0.0):.1f}s  (pid {beat.get('pid', '?')})"
    )
    request_p95 = beat.get("request_p95")
    if request_p95:
        tails = " ".join(
            f"{cls}<={request_p95[cls]:.0f}" for cls in sorted(request_p95)
        )
        line += f"  p95[{tails}]"
    return line


def render_status(root, now=None):
    """Human-readable sweep status; returns ``(text, ok)``.

    ``ok`` is False only when ``root`` is not a directory -- an empty
    or mid-write sweep still renders (that is the whole point: this is
    safe to run concurrently with the sweep it watches).
    """
    summary = summarize_sweep(root, now=now)
    if not summary["exists"]:
        return f"no sweep directory at {root}", False
    counts = summary["counts"]
    manifest_line = (
        f"  manifest: {summary['manifest_entries']} entr(ies) -- "
        f"{counts['ok']} ok, {counts['cached']} cached, {counts['error']} failed"
    )
    if summary["retries"]:
        manifest_line += f", {summary['retries']} retried"
    lines = [f"sweep: {root}", manifest_line]
    if summary["running"]:
        lines.append(f"  running ({len(summary['running'])}):")
        for beat in summary["running"]:
            lines.append(f"    {_beat_line(beat)}")
    else:
        lines.append("  running (0)")
    if summary["stale"]:
        lines.append(f"  stale ({len(summary['stale'])}) -- worker hung or killed?")
        for beat in summary["stale"]:
            lines.append(f"    {_beat_line(beat)}  last beat {beat['age']:.0f}s ago")
    for entry in summary["failures"]:
        error = entry.get("error", {})
        lines.append(
            f"  failed: {entry.get('label', '?')}: "
            f"{error.get('type', '?')}: {error.get('message', '')}"
        )
    requests = _dashboard_requests(root)
    if requests:
        tails = ", ".join(
            f"{cls} p95<={hist['p95']:.0f}"
            for cls, hist in sorted(requests.items())
            if hist.get("count")
        )
        if tails:
            lines.append(f"  request-class tails (dashboard): {tails}")
    return "\n".join(lines), True


def _dashboard_requests(root):
    """The ``requests`` block of ``root``'s sweep dashboard, if written.

    A finished ``--telemetry-out`` sweep aggregates per-request-class
    latency into ``dashboard.json``; when status is pointed at (or
    beside) that directory the per-class tails ride along.
    """
    for candidate in (root, os.path.dirname(root.rstrip(os.sep)) or "."):
        try:
            with open(os.path.join(candidate, "dashboard.json")) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if (
            isinstance(payload, dict)
            and payload.get("kind") == "leviathan-dashboard"
        ):
            return payload.get("requests") or None
    return None


# ----------------------------------------------------------------------
# the pool's monitoring poller (TTY progress line)
# ----------------------------------------------------------------------
class PoolMonitor:
    """Aggregate heartbeats into one live progress line while a sweep
    executes. Owned by :class:`~repro.experiments.pool.ExperimentPool`;
    rendering goes to ``stream`` (stderr by default) and is rewritten
    in place with ``\\r``."""

    def __init__(self, pool, root, stream=None, interval=0.5):
        self.pool = pool
        self.root = root
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._stop = threading.Event()
        self._thread = None
        self._width = 0

    def start(self):
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="pool-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self.interval)
            self._thread = None
        self._render(final=True)
        return self

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self._render()
            except (OSError, ValueError):
                pass  # monitoring must never take the sweep down

    def _render(self, final=False):
        done, total = self.pool.progress()
        running = [
            beat
            for beat in read_heartbeats(self.root)
            if beat.get("phase") not in TERMINAL_PHASES
        ]
        detail = ", ".join(
            f"{beat.get('label', '?')} t={_fmt_sim_time(beat.get('sim_time'))}"
            for beat in running[:3]
        )
        if len(running) > 3:
            detail += f", +{len(running) - 3} more"
        line = f"pool: {done}/{total} done"
        if detail:
            line += f" | running: {detail}"
        self._width = max(self._width, len(line))
        self.stream.write("\r" + line.ljust(self._width))
        if final:
            self.stream.write("\n")
        self.stream.flush()

"""Experiment plumbing shared by every table/figure module."""

import inspect
from dataclasses import dataclass, field


@dataclass
class Expectation:
    """One qualitative claim from the paper, checked against a measurement.

    ``kind`` is one of:

    - ``"greater"`` / ``"less"``: measured value vs. a threshold;
    - ``"between"``: measured within [lo, hi];
    - ``"ordering"``: a sequence of row labels expected in ascending
      order of their measured values.
    """

    description: str
    kind: str
    measured: object
    bounds: tuple

    @property
    def passed(self):
        if self.kind == "greater":
            return self.measured > self.bounds[0]
        if self.kind == "less":
            return self.measured < self.bounds[0]
        if self.kind == "between":
            return self.bounds[0] <= self.measured <= self.bounds[1]
        if self.kind == "ordering":
            values = list(self.measured)
            return values == sorted(values)
        raise ValueError(f"unknown expectation kind {self.kind!r}")

    def __str__(self):
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.description}: measured {self.measured!r} vs {self.bounds!r}"


@dataclass
class Experiment:
    """A completed table/figure reproduction."""

    name: str
    paper_reference: str
    #: Row dicts, one per bar/series-point of the figure.
    rows: list = field(default_factory=list)
    #: Shape checks against the paper's claims.
    expectations: list = field(default_factory=list)
    notes: str = ""

    def add_row(self, **fields):
        self.rows.append(fields)
        return self.rows[-1]

    def expect(self, description, kind, measured, *bounds):
        exp = Expectation(description, kind, measured, bounds)
        self.expectations.append(exp)
        return exp

    @property
    def passed(self):
        return all(e.passed for e in self.expectations)

    def check(self):
        """Raise AssertionError listing any failed expectations."""
        failed = [str(e) for e in self.expectations if not e.passed]
        if failed:
            raise AssertionError(
                f"{self.name}: shape checks failed:\n" + "\n".join(failed)
            )
        return True

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def table(self):
        """Render rows as an aligned text table."""
        if not self.rows:
            return "(no rows)"
        columns = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {
            c: max(len(str(c)), *(len(_fmt(r.get(c, ""))) for r in self.rows))
            for c in columns
        }
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns)
            )
        return "\n".join(lines)

    def report(self):
        lines = [f"== {self.name} ({self.paper_reference}) =="]
        if self.notes:
            lines.append(self.notes)
        lines.append(self.table())
        for e in self.expectations:
            lines.append(str(e))
        return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


class ExperimentRegistry:
    """Name -> run() mapping used by the CLI."""

    def __init__(self):
        self._runners = {}

    def register(self, name, runner, description=""):
        self._runners[name] = (runner, description)

    def names(self):
        return sorted(self._runners)

    def describe(self):
        return {name: desc for name, (_, desc) in self._runners.items()}

    def run(self, name, pool=None, **kwargs):
        """Run one registered experiment.

        ``pool`` is an :class:`~repro.experiments.pool.ExperimentPool`
        shared across the whole CLI invocation so overlapping specs are
        executed once. It is forwarded only to runners that declare a
        ``pool`` parameter — ad-hoc runners (tests register plain
        callables) keep working unchanged.
        """
        if name not in self._runners:
            raise KeyError(
                f"unknown experiment {name!r}; known: {', '.join(self.names())}"
            )
        runner, _ = self._runners[name]
        if pool is not None and _accepts_pool(runner):
            kwargs["pool"] = pool
        return runner(**kwargs)


def _accepts_pool(runner):
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return False
    return "pool" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )

"""Command-line entry point: ``python -m repro.experiments <name>``.

``leviathan-repro list`` shows every registered experiment;
``leviathan-repro all`` regenerates every table and figure.

Simulation runs execute on an :class:`~repro.experiments.pool.
ExperimentPool`: ``--jobs N`` fans independent runs out over worker
processes (default: one per CPU), results are content-hash cached
under ``--cache-dir`` (default ``results-cache/``, or
``$LEVIATHAN_CACHE_DIR``), ``--resume`` replays a sweep's completed
manifest entries after an interruption, and ``--no-cache`` forces
re-execution. The pool is *supervised*: ``--run-timeout`` puts a
wall-clock deadline on every run, transient failures (killed, hung,
or timed-out workers) are retried with backoff up to ``--run-retries``
attempts, corrupt cache entries are quarantined and re-executed, and
Ctrl-C drains gracefully (manifest intact; ``--resume`` continues).
``--backend`` selects the executor backend. See
``docs/experiments.md``.

``--telemetry-out DIR`` additionally captures telemetry (Perfetto
trace + metrics snapshot) for every machine each run builds, under
``DIR/runs/<label>-<hash>/machine-NN/``;
``leviathan-repro telemetry DIR`` summarizes a captured directory.
``--faults SPEC`` arms a :class:`~repro.sim.faults.FaultPlan` inside
every run (chaos runs); a run that raises makes the sweep exit
nonzero, with the exception and fault report written into the
telemetry directory when one is given.

``--profile DIR`` runs every pool execution under the
:class:`~repro.perf.profile.ProfileHarness`, dropping ``profile.json``,
``profile.pstats``, and ``stacks.folded`` beside each run's telemetry
artifacts.

Observability (see ``docs/observability.md``): ``--flight-recorder [N]``
arms a bounded event ring in every worker that drains into
``postmortem.json`` when a run dies; ``--log FILE`` appends structured
JSONL lifecycle records; multi-worker sweeps write per-run heartbeat
files that ``leviathan-repro status <cache-dir>`` tails from another
terminal; sweeps with ``--telemetry-out`` finish by aggregating every
run into ``dashboard.md`` / ``dashboard.json``.

``leviathan-repro bench`` runs the host-performance lab
(:mod:`repro.perf`): the registered micro/macro benchmarks with
``--trials``/``--warmup``, writing ``BENCH_<git-sha>.json`` into
``--out``. ``bench --compare BASELINE`` additionally renders a
noise-aware verdict table against a baseline file (nonzero exit on a
regression); ``bench --compare OLD NEW`` compares two recorded files
without running anything. See ``docs/performance.md``.
"""

import argparse
import json
import os
import sys
import time
import traceback

from repro.experiments import registry
from repro.experiments import ablations, figures, sensitivity, serving, tables
from repro.experiments.pool import ExperimentPool, SweepInterrupted
from repro.experiments.retry import RetryPolicy

_EXPERIMENTS = {
    "table1": (tables.run_table1, "Table I: NDC taxonomy"),
    "table2": (tables.run_table2, "Table II: actions per paradigm"),
    "table3": (tables.run_table3, "Table III: per-paradigm microarchitecture"),
    "table4": (tables.run_table4, "Table IV: hardware overhead"),
    "table5": (tables.run_table5, "Table V: system parameters"),
    "fig5": (figures.run_fig5, "Fig. 5: PHI / commutative scatter-updates"),
    "fig16": (figures.run_fig16, "Fig. 16: near-cache decompression"),
    "fig18": (figures.run_fig18, "Fig. 18: hash-table lookups"),
    "fig20": (figures.run_fig20, "Fig. 20: HATS decoupled traversal"),
    "fig21": (figures.run_fig21, "Fig. 21: HATS breakdown"),
    "fig22": (sensitivity.run_fig22, "Fig. 22: invoke-buffer sensitivity"),
    "fig23": (sensitivity.run_fig23, "Fig. 23: stream-buffer sensitivity"),
    "fig24": (sensitivity.run_fig24, "Fig. 24: input-size sensitivity"),
    "fig25": (sensitivity.run_fig25, "Fig. 25: system-size sensitivity"),
    "ablation-mc-cache": (ablations.run_mc_cache, "MC FIFO-cache ablation"),
    "ablation-migration": (ablations.run_migration, "DYNAMIC migration ablation"),
    "ablation-compaction": (ablations.run_compaction, "DRAM compaction ablation"),
    "ablation-near-memory": (
        ablations.run_near_memory,
        "near-memory engines extension (Sec. IX future work)",
    ),
    "ablation-components": (
        ablations.run_components,
        "PHI generality: connected components with min-combining",
    ),
    "serve-kv": (serving.run_serve_kv, "serving zoo: KV request serving"),
    "serve-paging": (serving.run_serve_paging, "serving zoo: LLM KV-cache paging"),
    "serve-scan": (serving.run_serve_scan, "serving zoo: near-storage scan pushdown"),
    "serve-replay": (serving.run_serve_replay, "serving zoo: JSONL trace replay"),
}

for _name, (_runner, _desc) in _EXPERIMENTS.items():
    registry.register(_name, _runner, _desc)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="leviathan-repro",
        description="Regenerate the tables and figures of the Leviathan paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="list",
        help="experiment name, 'all', 'list' (default), 'telemetry', "
        "'status', 'explain', or 'bench'",
    )
    parser.add_argument(
        "target",
        nargs="?",
        help="for 'telemetry': the --telemetry-out directory to summarize; "
        "for 'status': the cache dir of the sweep to watch "
        "(default: --cache-dir); for 'explain': a telemetry run "
        "directory or a cached-result .json entry",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="print results without asserting the paper-shape expectations",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="also write the reports as a markdown document",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation runs (default: CPU count); "
        "results are identical for any N",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("LEVIATHAN_CACHE_DIR", "results-cache"),
        metavar="DIR",
        help="content-addressed result cache (default: results-cache/, "
        "or $LEVIATHAN_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore cached results and re-execute every run",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already recorded ok in the cache manifest "
        "(continue an interrupted sweep)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="executor backend: 'auto' (default: inline for one worker, "
        "per-job processes otherwise), 'local-inline', or 'local-process'",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per run; an over-deadline worker is "
        "killed and the run retried as a transient failure",
    )
    parser.add_argument(
        "--run-retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per run for transient failures (worker "
        "killed, timeout, hang); 1 disables retry (default: 3)",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="DIR",
        help="capture telemetry (Perfetto trace + metrics) per simulation "
        "run under DIR/runs/<label>-<hash>/machine-NN/",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm a fault plan on every machine, e.g. "
        "'crash:1@2000; noc-delay:0.01@20; seed:7' "
        "(see repro.sim.faults for the grammar)",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        help="profile every pool run (cProfile + collapsed stacks), "
        "writing profile.json / profile.pstats / stacks.folded per run "
        "under DIR (or beside --telemetry-out artifacts); for 'bench', "
        "profile each benchmark once after its timed trials",
    )
    parser.add_argument(
        "--flight-recorder",
        nargs="?",
        const=256,
        default=None,
        type=int,
        metavar="N",
        help="keep the last N events (default 256) of every run in a ring "
        "buffer; a failed run drains it into postmortem.json",
    )
    parser.add_argument(
        "--log",
        metavar="FILE",
        help="append structured JSONL run logs (run.start/run.end/faults/"
        "watchdog records, correlated by run id and spec hash) to FILE",
    )
    explain_group = parser.add_argument_group(
        "explain (latency attribution)"
    )
    explain_group.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        help="attribute the latency delta between two runs (telemetry "
        "run dirs or cached-result .json entries) to taxonomy "
        "components, instead of explaining a single run",
    )
    bench_group = parser.add_argument_group("bench (host-performance lab)")
    bench_group.add_argument(
        "--trials",
        type=int,
        default=5,
        metavar="N",
        help="timed trials per benchmark (default: 5)",
    )
    bench_group.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="N",
        help="untimed warmup runs per benchmark (default: 1)",
    )
    bench_group.add_argument(
        "--filter",
        metavar="SUBSTR",
        help="only run benchmarks whose name contains SUBSTR",
    )
    bench_group.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_<git-sha>.json history file "
        "(default: current directory)",
    )
    bench_group.add_argument(
        "--compare",
        nargs="+",
        metavar="FILE",
        help="one file: run the suite, then compare against this baseline; "
        "two files: compare OLD NEW without running anything. "
        "Exits nonzero on a regression.",
    )
    bench_group.add_argument(
        "--factor",
        type=float,
        default=None,
        metavar="F",
        help="regression threshold: median beyond F x baseline AND outside "
        "the baseline IQR (default: 2.0)",
    )
    args = parser.parse_args(argv)

    if args.run_retries is not None and args.run_retries < 1:
        parser.error(
            f"--run-retries must be >= 1 (1 disables retry), "
            f"got {args.run_retries}"
        )

    if args.experiment == "bench":
        return _run_bench(args)

    if args.experiment == "list":
        for name in registry.names():
            print(f"{name:22s} {registry.describe()[name]}")
        return 0

    if args.experiment == "telemetry":
        from repro.experiments.telemetry_report import report

        if not args.target:
            print("usage: leviathan-repro telemetry DIR", file=sys.stderr)
            return 2
        text, ok = report(args.target)
        print(text)
        return 0 if ok else 1

    if args.experiment == "status":
        from repro.experiments.monitor import render_status

        text, ok = render_status(args.target or args.cache_dir)
        print(text)
        return 0 if ok else 1

    if args.experiment == "explain":
        from repro.experiments.explain import explain, explain_diff

        # Reports land beside the data: a run-dir target gets
        # explain.{json,md} inside it; --out (the bench history flag)
        # overrides, which is how CI collects them as artifacts.
        out_override = args.out if args.out != "." else None
        try:
            if args.diff:
                text, _ = explain_diff(
                    args.diff[0], args.diff[1], out_dir=out_override
                )
            elif args.target:
                out_dir = out_override or (
                    args.target if os.path.isdir(args.target) else None
                )
                text, _ = explain(args.target, out_dir=out_dir)
            else:
                print(
                    "usage: leviathan-repro explain RUN_DIR_OR_CACHE_ENTRY"
                    " | explain --diff A B",
                    file=sys.stderr,
                )
                return 2
        except (FileNotFoundError, ValueError) as exc:
            print(f"explain: {exc}", file=sys.stderr)
            return 2
        print(text)
        return 0

    from repro.experiments.plotting import speedup_chart

    if args.faults:
        # Validate the fault spec up front (each pool worker re-parses
        # it per run); a bad spec is a usage error, not a chaos crash.
        from repro.sim.faults import FaultPlan

        FaultPlan.parse(args.faults)

    retry = (
        RetryPolicy(max_attempts=args.run_retries)
        if args.run_retries is not None
        else None
    )
    pool = ExperimentPool(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache=not args.no_cache,
        resume=args.resume,
        telemetry_dir=args.telemetry_out,
        profile_dir=args.profile,
        faults=args.faults,
        flightrec=args.flight_recorder,
        log_path=args.log,
        backend=args.backend,
        retry=retry,
        run_timeout=args.run_timeout,
    )

    names = registry.names() if args.experiment == "all" else [args.experiment]
    failed = []
    crashed = []
    markdown_sections = []
    for name in names:
        started = time.time()
        error = None
        error_text = None
        try:
            experiment = registry.run(name, pool=pool)
        except KeyError:
            # Unknown experiment name: a usage error, not a workload
            # crash -- propagate as before.
            raise
        except SweepInterrupted as exc:
            # Graceful drain already happened (manifest flushed and
            # fsynced); exit nonzero with the resume hint.
            print(f"\ninterrupted: {exc}", file=sys.stderr)
            return 130
        except Exception as exc:  # workload crashed (chaos runs do this)
            error = exc
            error_text = traceback.format_exc()
        elapsed = time.time() - started

        report = pool.consume_report()
        executed = report.get("executed", 0)
        cached = report.get("cached", 0)
        outdir = None
        if args.telemetry_out:
            outdir = os.path.join(args.telemetry_out, name)
            print(
                f"telemetry: {report.get('telemetry_machines', 0)} machine(s) -> "
                f"{os.path.join(args.telemetry_out, 'runs')}"
            )
        if args.faults:
            print(
                f"faults: {report.get('faults_injected', 0)} injected over "
                f"{executed} run(s)"
            )
        if args.profile:
            print(
                f"profiles: {report.get('profiled', 0)} run(s) -> "
                f"{os.path.join(args.telemetry_out or args.profile, 'runs')}"
            )
        if executed or cached:
            line = (
                f"pool: {executed} executed, {cached} cached "
                f"({pool.jobs} job(s))"
            )
            retried = report.get("retried", 0)
            quarantined = report.get("quarantined", 0)
            if retried:
                line += f", {retried} retried"
            if quarantined:
                line += f", {quarantined} cache entr(ies) quarantined"
            print(line)

        if error is not None:
            crashed.append(name)
            print(f"ERROR: {name} raised {type(error).__name__}: {error}", file=sys.stderr)
            print(error_text, file=sys.stderr)
            if outdir is not None:
                os.makedirs(outdir, exist_ok=True)
                with open(os.path.join(outdir, "error.json"), "w") as handle:
                    json.dump(
                        {
                            "experiment": name,
                            "error": type(error).__name__,
                            "message": str(error),
                            "traceback": error_text,
                        },
                        handle,
                        indent=2,
                    )
                    handle.write("\n")
            continue

        print(experiment.report())
        if any("speedup" in row for row in experiment.rows):
            print()
            print(speedup_chart(experiment))
        print(f"({elapsed:.1f}s)\n")
        if args.markdown:
            markdown_sections.append(_markdown_section(name, experiment, elapsed))
        if not args.no_check and not experiment.passed:
            failed.append(name)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write("# Reproduced tables and figures\n\n")
            handle.write("\n".join(markdown_sections))
        print(f"wrote {args.markdown}")
    if args.telemetry_out:
        summary = pool.write_dashboard()
        if summary is not None:
            print(
                f"dashboard: {summary['runs']} run(s) aggregated -> "
                f"{os.path.join(args.telemetry_out, 'dashboard.md')}"
            )
    if crashed:
        print(f"CRASHED: {', '.join(crashed)}", file=sys.stderr)
        return 1
    if failed:
        print(f"FAILED shape checks: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _run_bench(args):
    """The ``bench`` subcommand: run, record, and/or compare benchmarks."""
    from repro.perf import registry as bench_registry
    from repro.perf.bench import render_results, run_benchmark
    from repro.perf.compare import (
        DEFAULT_FACTOR,
        compare,
        has_regression,
        render_verdicts,
    )
    from repro.perf.history import bench_payload, load_history, write_history

    factor = args.factor if args.factor is not None else DEFAULT_FACTOR
    compare_paths = args.compare or []
    if len(compare_paths) > 2:
        print("usage: bench --compare BASELINE | --compare OLD NEW", file=sys.stderr)
        return 2

    if len(compare_paths) == 2:
        # Pure file comparison: no benchmarks are executed.
        old, new = (load_history(path) for path in compare_paths)
        verdicts = compare(old, new, factor=factor)
        print(render_verdicts(verdicts, factor=factor))
        return 1 if has_regression(verdicts) else 0

    benches = bench_registry.select(args.filter)
    if not benches:
        print(
            f"no benchmarks match {args.filter!r}; "
            f"known: {', '.join(bench_registry.names())}",
            file=sys.stderr,
        )
        return 2

    results = []
    for bench in benches:
        started = time.time()
        result = run_benchmark(bench, trials=args.trials, warmup=args.warmup)
        results.append(result)
        print(
            f"{bench.name}: median {result.median_s:.4f}s "
            f"iqr {result.iqr_s:.4f}s "
            f"{result.steps_per_sec:.0f} {result.unit}/s "
            f"({time.time() - started:.1f}s total)"
        )
    print()
    print(render_results(results))

    payload = bench_payload(results, args.trials, args.warmup)
    path = write_history(payload, out_dir=args.out)
    print(f"wrote {path}")

    if args.profile:
        from repro.perf.profile import ProfileHarness

        for bench in benches:
            harness = ProfileHarness()
            harness.run(bench.make())
            outdir = harness.save(os.path.join(args.profile, bench.name))
            print(f"profiled {bench.name} -> {outdir}")
            if bench.kind == "macro":
                print(harness.report.render(top=10))

    if compare_paths:
        baseline = load_history(compare_paths[0])
        verdicts = compare(baseline, payload, factor=factor)
        print()
        print(render_verdicts(verdicts, factor=factor))
        if has_regression(verdicts):
            return 1
    return 0


def _markdown_section(name, experiment, elapsed):
    lines = [f"## {experiment.name} ({experiment.paper_reference})", ""]
    if experiment.notes:
        lines.append(experiment.notes)
        lines.append("")
    if experiment.rows:
        columns = []
        for row in experiment.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "---|" * len(columns))
        for row in experiment.rows:
            lines.append(
                "| "
                + " | ".join(_fmt_md(row.get(c, "")) for c in columns)
                + " |"
            )
        lines.append("")
    for expectation in experiment.expectations:
        lines.append(f"- {expectation}")
    lines.append("")
    lines.append(f"_Regenerate with `leviathan-repro {name}` ({elapsed:.1f}s)._")
    lines.append("")
    return "\n".join(lines)


def _fmt_md(value):
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


if __name__ == "__main__":
    sys.exit(main())

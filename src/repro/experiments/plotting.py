"""ASCII rendering of reproduced figures.

The paper's figures are bar charts and line plots; the CLI renders
their reproduced counterparts as text so results are inspectable in a
terminal and in CI logs without a plotting dependency.
"""


def bar_chart(items, width=46, unit="", baseline=None):
    """Render ``[(label, value), ...]`` as horizontal bars.

    ``baseline`` draws a reference marker at that value (e.g. 1.0 for
    speedup charts).
    """
    if not items:
        return "(empty chart)"
    label_width = max(len(str(label)) for label, _ in items)
    numeric = [value for _, value in items if _is_finite(value)]
    top = max(numeric) if numeric else 1.0
    top = max(top, baseline or 0.0) or 1.0
    lines = []
    for label, value in items:
        if not _is_finite(value):
            lines.append(f"{str(label):<{label_width}}  (n/a)")
            continue
        filled = int(round(width * value / top))
        bar = "#" * max(filled, 0)
        if baseline is not None and 0 < baseline <= top:
            marker = int(round(width * baseline / top))
            if marker >= len(bar):
                bar = bar + " " * (marker - len(bar)) + "|"
            else:
                bar = bar[:marker] + "|" + bar[marker + 1 :]
        lines.append(f"{str(label):<{label_width}}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def line_plot(points, width=50, height=10, x_label="", y_label=""):
    """Render ``[(x, y), ...]`` as a small ASCII scatter/line plot."""
    if len(points) < 2:
        return "(need at least two points)"
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - i * y_span / (height - 1)
        lines.append(f"{y_val:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.4g}" + " " * max(1, width - 12) + f"{x_hi:.4g}"
    )
    if x_label or y_label:
        lines.append(f"            x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def speedup_chart(experiment, label_key="variant", value_key="speedup"):
    """A bar chart of an experiment's speedup rows (baseline marker at 1).

    Rows without a ``variant`` column label with their first field
    (sweep experiments label by their swept parameter).
    """
    items = []
    for row in experiment.rows:
        if value_key not in row:
            continue
        if label_key in row:
            label = row[label_key]
        else:
            label = next(
                (f"{k}={v}" for k, v in row.items() if k != value_key), "?"
            )
        items.append((label, row.get(value_key)))
    return bar_chart(items, unit="x", baseline=1.0)


def _is_finite(value):
    try:
        v = float(value)
    except (TypeError, ValueError):
        return False
    return v == v and v not in (float("inf"), float("-inf"))

"""Parallel, cache-aware, resumable execution of experiment sweeps.

The paper's evaluation is dozens of *independent* simulator runs
(figure grids, sensitivity sweeps, ablations). This module turns each
sweep into a flat list of :class:`RunSpec` entries -- one simulator
execution each -- and executes them on a worker pool:

- ``jobs=1`` runs specs inline in this process (the default for direct
  calls from tests and benchmarks); ``jobs>1`` fans out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.
- Every spec is content-hashed (function path + canonicalized kwargs +
  the armed fault plan); completed results are written to
  ``<cache-dir>/<hash>.json`` so re-runs and overlapping sweeps are
  free (Figs. 20 and 21 share the HATS study through the cache rather
  than through ad-hoc memoization).
- An append-only ``<cache-dir>/manifest.jsonl`` journals every spec as
  it completes, so an interrupted sweep resumes with ``resume=True`` by
  skipping hashes the journal already records (a truncated final line
  -- the signature of a kill mid-write -- is tolerated and ignored).
- A crashed spec is recorded in the manifest (and as
  ``runs/<slug>/error.json`` when an artifact directory is configured),
  the rest of the sweep still executes, and
  :meth:`ExperimentPool.run_results` raises
  :class:`IncompleteSweepError` at the end so the CLI exits nonzero.

Determinism is load-bearing: specs are pure functions of their kwargs,
results are assembled in *spec order* (never completion order), and the
float payloads survive the JSON cache bit-exactly (``repr`` round-trip),
so a ``jobs=8`` sweep produces bit-identical figure data to ``jobs=1``.
``tests/test_pool.py`` enforces this.
"""

import hashlib
import importlib
import json
import os
import re
import time
import traceback
from dataclasses import dataclass, field

from repro.sim.telemetry.log import ensure_run_logging, get_logger, new_run_id
from repro.workloads.common import RunResult, StudyResult

_log = get_logger("pool")

#: Bump when the cached-payload layout changes; old entries then miss.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# specs and content hashing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulator execution: a function path plus its kwargs.

    ``fn`` is a ``"package.module:function"`` path resolved inside the
    worker, so a spec survives pickling into a subprocess and hashing
    into the cache. ``kwargs`` must be JSON-canonicalizable (dicts,
    lists/tuples, strings, numbers, bools, None). ``label`` is a
    human-readable sweep-local name used in the manifest and artifact
    directories; it is *excluded* from the content hash so overlapping
    sweeps that enumerate the same computation share a cache entry.
    """

    fn: str
    kwargs: dict = field(default_factory=dict)
    label: str = ""


def _canonical(value):
    """Reduce ``value`` to JSON-safe types (tuples->lists, numpy->python)."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return _canonical(value.item())
    raise TypeError(f"value {value!r} cannot be canonicalized for a RunSpec")


def canonical_json(payload):
    """The canonical encoding hashed by :func:`spec_hash`."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(spec, faults=None):
    """Content hash of one spec (label excluded, fault plan included)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "fn": spec.fn,
        "kwargs": _canonical(spec.kwargs),
        "faults": faults or None,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def encode_result(result):
    """A JSON-safe payload for a spec's return value.

    :class:`~repro.workloads.common.RunResult` is encoded field by field
    (tuple-keyed access profiles become triples); any other value must
    itself be JSON-canonicalizable.
    """
    if isinstance(result, RunResult):
        try:
            output = _canonical(result.output)
        except TypeError:
            output = None  # non-serializable workload output: drop it
        return {
            "kind": "run_result",
            "name": result.name,
            "cycles": result.cycles,
            "energy_pj": result.energy_pj,
            "stats": _canonical(result.stats),
            "output": output,
            "functional": result.functional,
            "notes": result.notes,
            "energy_breakdown": _canonical(result.energy_breakdown),
            "access_profile": [
                [level, outcome, count]
                for (level, outcome), count in result.access_profile.items()
            ],
        }
    return {"kind": "value", "value": _canonical(result)}


def decode_result(payload):
    """Inverse of :func:`encode_result`."""
    if payload["kind"] == "value":
        return payload["value"]
    return RunResult(
        name=payload["name"],
        cycles=payload["cycles"],
        energy_pj=payload["energy_pj"],
        stats=payload["stats"],
        output=payload["output"],
        functional=payload["functional"],
        notes=payload["notes"],
        energy_breakdown=payload["energy_breakdown"],
        access_profile={
            (level, outcome): count
            for level, outcome, count in payload["access_profile"]
        },
    )


# ----------------------------------------------------------------------
# the worker (runs inline for jobs=1, in a subprocess otherwise)
# ----------------------------------------------------------------------
def _execute_job(job):
    """Execute one spec; never raises -- errors become the outcome."""
    started = time.perf_counter()
    outcome = {
        "hash": job["hash"],
        "label": job["label"],
        "fn": job["fn"],
        "status": "ok",
        "telemetry_machines": 0,
        "faults_injected": 0,
    }
    telemetry_session = None
    fault_session = None
    flight_session = None
    heartbeat = None
    profiler = None
    if job.get("log_path"):
        # Idempotent: fork-started workers inherit the parent's handler.
        ensure_run_logging(job["log_path"], run_id=job.get("run_id"))
    _log.info(
        "run.start", extra={"hash": job["hash"], "label": job["label"], "fn": job["fn"]}
    )
    try:
        if job.get("heartbeat"):
            from repro.experiments.monitor import HeartbeatWriter

            heartbeat = HeartbeatWriter(
                job["heartbeat"]["dir"],
                job["hash"],
                job["label"],
                interval=job["heartbeat"]["interval"],
            ).start()
        module_name, _, fn_name = job["fn"].partition(":")
        fn = getattr(importlib.import_module(module_name), fn_name)
        if job.get("faults"):
            from repro.sim.faults import FaultSession

            fault_session = FaultSession(job["faults"]).install()
        if job.get("telemetry"):
            from repro.sim.telemetry import TelemetrySession

            telemetry_session = TelemetrySession().install()
        if job.get("flightrec"):
            from repro.sim.telemetry.flightrec import FlightRecorderSession

            flight_session = FlightRecorderSession(job["flightrec"]).install()
        if job.get("profile"):
            from repro.perf.profile import ProfileHarness

            profiler = ProfileHarness()
        try:
            if heartbeat is not None:
                heartbeat.beat(phase="simulating")
            if profiler is not None:
                result = profiler.run(fn, **job["kwargs"])
            else:
                result = fn(**job["kwargs"])
        finally:
            if heartbeat is not None:
                heartbeat.phase = "artifacts"
            if flight_session is not None:
                flight_session.uninstall()
            if telemetry_session is not None:
                telemetry_session.uninstall()
            if fault_session is not None:
                fault_session.uninstall()
        outcome["result"] = encode_result(result)
    except Exception as exc:
        outcome["status"] = "error"
        outcome["error"] = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        _log.error(
            "run.error",
            extra={
                "hash": job["hash"],
                "label": job["label"],
                "error": type(exc).__name__,
                "error_message": str(exc),  # "message" is reserved by logging
            },
        )
        # The flight recorder's whole purpose: a crash leaves evidence.
        if flight_session is not None and job.get("postmortem_dir"):
            try:
                path = flight_session.save_postmortem(job["postmortem_dir"], error=exc)
                if path is not None:
                    outcome["postmortem"] = path
            except Exception as post_exc:
                outcome["postmortem_error"] = (
                    f"{type(post_exc).__name__}: {post_exc}"
                )
    # Per-run artifacts (telemetry traces, fault reports) are written by
    # the worker -- it owns the sessions; partial artifacts from a
    # crashed run are kept for debugging.
    artifacts = job.get("artifacts")
    if artifacts is not None:
        try:
            if telemetry_session is not None and telemetry_session.telemetries:
                telemetry_session.save(artifacts)
                outcome["telemetry_machines"] = len(telemetry_session.telemetries)
            if fault_session is not None and fault_session.controllers:
                fault_session.save(artifacts)
            if profiler is not None and profiler.report is not None:
                profiler.save(artifacts)
                outcome["profiled"] = 1
        except Exception as exc:  # artifact IO must not eat the result
            outcome["artifact_error"] = f"{type(exc).__name__}: {exc}"
    if fault_session is not None:
        outcome["faults_injected"] = fault_session.total_injected
    outcome["elapsed"] = time.perf_counter() - started
    if heartbeat is not None:
        try:
            heartbeat.stop(phase="done" if outcome["status"] == "ok" else "error")
        except OSError:
            pass
    _log.info(
        "run.end",
        extra={
            "hash": job["hash"],
            "label": job["label"],
            "status": outcome["status"],
            "elapsed": outcome["elapsed"],
        },
    )
    return outcome


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class IncompleteSweepError(RuntimeError):
    """Some specs of a sweep failed; the rest completed and are cached."""

    def __init__(self, failures):
        self.failures = failures
        lines = [
            f"{f['label']}: {f['error']['type']}: {f['error']['message']}"
            for f in failures
        ]
        super().__init__(
            f"{len(failures)} run(s) of the sweep failed:\n" + "\n".join(lines)
        )


class ExperimentPool:
    """Executes :class:`RunSpec` lists with caching, resume, and fan-out.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (or a single pending spec) executes
        inline; ``None`` means ``os.cpu_count()``.
    cache_dir:
        Root of the result cache and manifest journal. ``None`` disables
        all disk state (results are still memoized in-process).
    cache:
        When False, existing ``<hash>.json`` entries are ignored and no
        new ones are written (the manifest is still journaled).
    resume:
        Load the manifest and serve every spec it records as ``ok`` from
        its cache entry -- even when ``cache=False`` -- so an interrupted
        sweep re-executes only what is missing.
    telemetry_dir:
        When set, every executed spec captures telemetry (and its fault
        report / error report) under ``<telemetry_dir>/runs/<slug>/``.
        Artifact capture forces execution: cached results carry no
        fresh traces, so cache *reads* are skipped (writes still happen).
    profile_dir:
        When set, every executed spec runs under the
        :class:`~repro.perf.profile.ProfileHarness` and drops
        ``profile.json`` + ``profile.pstats`` + ``stacks.folded`` beside
        its telemetry artifacts (or under ``<profile_dir>/runs/<slug>/``
        when no telemetry directory is configured). Like telemetry
        capture, profiling forces execution; the profiled results remain
        bit-identical (the harness only observes).
    faults:
        A fault-plan spec string armed on every machine each worker
        builds. Part of the content hash -- faulted results never
        collide with clean ones.
    flightrec:
        Ring capacity (events per machine) for a flight recorder armed
        in every executing worker. On a failed run the ring drains into
        ``postmortem.json`` under the run's artifact directory (or
        ``<cache-dir>/postmortems/<slug>/`` without one). Unlike
        telemetry capture it does NOT force execution -- cached results
        stay served from cache (a cached ``ok`` needs no postmortem).
    log_path:
        JSONL run-log file; the pool and every worker append lifecycle
        records (``run.start``/``run.end``/``run.error``) to it,
        correlated by ``run_id`` and spec hash.
    heartbeat_interval:
        Seconds between per-run heartbeat files under
        ``<cache-dir>/heartbeats/``. ``None`` enables heartbeats at the
        default cadence only for multi-worker sweeps (``jobs > 1``);
        pass a number to force them on (needs a cache dir either way).
    progress:
        Render a live progress line on stderr while the sweep executes.
        ``None`` auto-enables it for multi-worker sweeps on a TTY.
    """

    def __init__(
        self,
        jobs=None,
        cache_dir="results-cache",
        cache=True,
        resume=False,
        telemetry_dir=None,
        profile_dir=None,
        faults=None,
        flightrec=None,
        log_path=None,
        heartbeat_interval=None,
        progress=None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache_dir = cache_dir
        self.cache = bool(cache and cache_dir)
        self.telemetry_dir = telemetry_dir
        self.profile_dir = profile_dir
        self.faults = faults
        self.flightrec = int(flightrec) if flightrec else None
        self.log_path = log_path
        self.heartbeat_interval = heartbeat_interval
        self.progress_mode = progress
        self.run_id = new_run_id()
        #: Outcomes of every failed spec across the pool's lifetime.
        self.failures = []
        self._memory = {}
        self._report = {}
        self._pending_done = 0
        self._pending_total = 0
        self._log_handle = None
        self._resumed = self._load_manifest() if (resume and cache_dir) else set()
        if log_path:
            self._log_handle = ensure_run_logging(log_path, run_id=self.run_id)

    # -- journal and cache ---------------------------------------------
    def _manifest_path(self):
        return os.path.join(self.cache_dir, "manifest.jsonl")

    def _load_manifest(self):
        """Hashes recorded ``ok``; tolerates a truncated final line."""
        done = set()
        try:
            with open(self._manifest_path()) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # killed mid-append; the run is not done
                    if entry.get("status") == "ok":
                        done.add(entry.get("hash"))
        except FileNotFoundError:
            pass
        return done

    def _append_manifest(self, outcome, cached):
        if not self.cache_dir:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        self._heal_torn_manifest()
        entry = {
            "hash": outcome["hash"],
            "label": outcome["label"],
            "fn": outcome["fn"],
            "status": outcome["status"],
            "elapsed": outcome.get("elapsed", 0.0),
            "cached": cached,
        }
        if outcome["status"] != "ok":
            entry["error"] = {
                "type": outcome["error"]["type"],
                "message": outcome["error"]["message"],
            }
        with open(self._manifest_path(), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def _heal_torn_manifest(self):
        """Terminate a torn final line (kill mid-append) before appending.

        Without this, the first append of a resumed sweep would glue its
        JSON onto the torn fragment and corrupt one more entry.
        """
        if getattr(self, "_manifest_healed", False):
            return
        self._manifest_healed = True
        try:
            with open(self._manifest_path(), "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except FileNotFoundError:
            pass

    def _cache_path(self, digest):
        return os.path.join(self.cache_dir, digest + ".json")

    def _load_cached(self, digest):
        if self.telemetry_dir or self.profile_dir:
            return None  # artifacts require a fresh execution
        if not self.cache_dir or not (self.cache or digest in self._resumed):
            return None
        try:
            with open(self._cache_path(digest)) as handle:
                payload = json.load(handle)
        except (FileNotFoundError, ValueError):
            return None
        return payload if payload.get("status") == "ok" else None

    def _store_cached(self, outcome):
        if not self.cache or outcome["status"] != "ok":
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(outcome["hash"])
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(outcome, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)  # atomic: a kill never leaves a torn entry

    # -- execution ------------------------------------------------------
    def _job(self, spec, digest):
        job = {
            "fn": spec.fn,
            "kwargs": spec.kwargs,
            "hash": digest,
            "label": spec.label or spec.fn,
        }
        if self.faults:
            job["faults"] = self.faults
        if self.telemetry_dir:
            job["telemetry"] = True
        if self.profile_dir:
            job["profile"] = True
        if self.telemetry_dir or self.profile_dir:
            job["artifacts"] = self.run_dir(digest, job["label"])
        if self.flightrec:
            job["flightrec"] = self.flightrec
            postmortem_dir = job.get("artifacts") or self._postmortem_dir(
                digest, job["label"]
            )
            if postmortem_dir:
                job["postmortem_dir"] = postmortem_dir
        if self.log_path:
            job["log_path"] = self.log_path
            job["run_id"] = self.run_id
        interval = self._heartbeat_interval()
        if interval is not None:
            from repro.experiments.monitor import heartbeat_dir

            job["heartbeat"] = {
                "dir": heartbeat_dir(self.cache_dir),
                "interval": interval,
            }
        return job

    def _heartbeat_interval(self):
        """The heartbeat cadence, or None when heartbeats are off.

        Heartbeats live under the cache dir; without one there is
        nowhere for ``status`` to look, so they stay off. An explicit
        interval forces them on; otherwise only fanned-out sweeps beat
        (inline test/benchmark runs skip the writer thread).
        """
        if not self.cache_dir:
            return None
        if self.heartbeat_interval is not None:
            return float(self.heartbeat_interval)
        from repro.experiments.monitor import DEFAULT_INTERVAL

        return DEFAULT_INTERVAL if self.jobs > 1 else None

    def _postmortem_dir(self, digest, label):
        """Postmortem home when no artifact directory is configured."""
        if not self.cache_dir:
            return None
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-")[:60]
        return os.path.join(self.cache_dir, "postmortems", f"{slug}-{digest[:12]}")

    def run_dir(self, digest, label):
        """Artifact directory for one run under the artifact root.

        Telemetry and profile artifacts share one directory per run; the
        telemetry root wins when both are configured.
        """
        root = self.telemetry_dir or self.profile_dir
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-")[:60]
        return os.path.join(root, "runs", f"{slug}-{digest[:12]}")

    def run(self, specs):
        """Execute ``specs``; returns raw outcome dicts in spec order.

        Every spec executes (or is served from cache) even when others
        fail; failures are journaled and collected on ``self.failures``.
        """
        specs = list(specs)
        order = []
        pending = []
        queued = set()
        for spec in specs:
            digest = spec_hash(spec, self.faults)
            order.append(digest)
            if digest in self._memory or digest in queued:
                continue
            cached = self._load_cached(digest)
            if cached is not None:
                self._memory[digest] = cached
                self._bump("cached")
                self._append_manifest(cached, cached=True)
                continue
            queued.add(digest)
            pending.append(self._job(spec, digest))
        self._execute(pending)
        return [self._memory[digest] for digest in order]

    def run_results(self, specs):
        """Execute ``specs`` and decode their results, in spec order.

        Raises :class:`IncompleteSweepError` after the whole sweep has
        run if any spec failed.
        """
        outcomes = self.run(specs)
        failed = [o for o in outcomes if o["status"] != "ok"]
        if failed:
            raise IncompleteSweepError(failed)
        return [decode_result(o["result"]) for o in outcomes]

    def _execute(self, pending):
        if not pending:
            return
        self._pending_done, self._pending_total = 0, len(pending)
        monitor = self._start_monitor()
        try:
            self._execute_pending(pending)
        finally:
            if monitor is not None:
                monitor.stop()

    def _execute_pending(self, pending):
        if self.jobs == 1 or len(pending) == 1:
            for job in pending:
                self._finish(_execute_job(job))
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed

        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {executor.submit(_execute_job, job): job for job in pending}
            for future in as_completed(futures):
                job = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # the worker process itself died
                    outcome = {
                        "hash": job["hash"],
                        "label": job["label"],
                        "fn": job["fn"],
                        "status": "error",
                        "elapsed": 0.0,
                        "telemetry_machines": 0,
                        "faults_injected": 0,
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                            "traceback": "",
                        },
                    }
                    _log.error(
                        "run.worker_died",
                        extra={
                            "hash": job["hash"],
                            "label": job["label"],
                            "error": type(exc).__name__,
                        },
                    )
                self._finish(outcome)

    def _start_monitor(self):
        import sys

        enabled = self.progress_mode
        if enabled is None:
            enabled = self.jobs > 1 and sys.stderr.isatty()
        if not enabled or not self.cache_dir:
            return None
        from repro.experiments.monitor import PoolMonitor

        return PoolMonitor(self, self.cache_dir).start()

    def progress(self):
        """``(done, total)`` of the currently executing batch."""
        return self._pending_done, self._pending_total

    def _finish(self, outcome):
        self._memory[outcome["hash"]] = outcome
        self._pending_done += 1
        self._bump("executed")
        self._bump("telemetry_machines", outcome.get("telemetry_machines", 0))
        self._bump("faults_injected", outcome.get("faults_injected", 0))
        self._bump("profiled", outcome.get("profiled", 0))
        if outcome["status"] == "ok":
            self._store_cached(outcome)
        else:
            self._bump("failed")
            self.failures.append(outcome)
            self._write_error_artifact(outcome)
        self._append_manifest(outcome, cached=False)

    def _write_error_artifact(self, outcome):
        if not (self.telemetry_dir or self.profile_dir):
            return
        run_dir = self.run_dir(outcome["hash"], outcome["label"])
        os.makedirs(run_dir, exist_ok=True)
        with open(os.path.join(run_dir, "error.json"), "w") as handle:
            json.dump(
                {
                    "label": outcome["label"],
                    "fn": outcome["fn"],
                    "hash": outcome["hash"],
                    "error": outcome["error"]["type"],
                    "message": outcome["error"]["message"],
                    "traceback": outcome["error"]["traceback"],
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # -- reporting ------------------------------------------------------
    def write_dashboard(self, root=None):
        """Aggregate the sweep's per-run telemetry into the dashboard.

        Writes ``dashboard.json`` + ``dashboard.md`` under ``root``
        (default: the telemetry directory) and returns the summary dict,
        or None when there is nothing to aggregate.
        """
        root = root or self.telemetry_dir
        if not root:
            return None
        from repro.experiments.telemetry_report import write_dashboard

        summary = write_dashboard(root)
        if summary is not None:
            _log.info(
                "sweep.dashboard",
                extra={"root": root, "runs": summary.get("runs", 0)},
            )
        return summary

    def _bump(self, key, amount=1):
        if amount:
            self._report[key] = self._report.get(key, 0) + amount

    def consume_report(self):
        """Counters accumulated since the last call (executed/cached/...)."""
        report, self._report = self._report, {}
        return report


# ----------------------------------------------------------------------
# assembly helpers and the shared default pool
# ----------------------------------------------------------------------
def run_study(pool, name, baseline, specs, params=None):
    """Run a study's variant specs and rebuild its ``StudyResult``."""
    study = StudyResult(study=name, baseline=baseline, params=params or {})
    for result in pool.run_results(specs):
        study.add(result)
    return study


_default_pool = None


def default_pool():
    """Process-wide inline pool for direct runner calls (``pool=None``).

    No disk state -- results are memoized in memory only, which is what
    lets Figs. 20 and 21 share one HATS study when called back to back
    (replacing the old module-global memo in ``figures.py``).
    """
    global _default_pool
    if _default_pool is None:
        _default_pool = ExperimentPool(jobs=1, cache_dir=None)
    return _default_pool

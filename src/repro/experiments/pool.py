"""Parallel, cache-aware, resumable execution of experiment sweeps.

The paper's evaluation is dozens of *independent* simulator runs
(figure grids, sensitivity sweeps, ablations). This module turns each
sweep into a flat list of :class:`RunSpec` entries -- one simulator
execution each -- and executes them on a worker pool:

- ``jobs=1`` runs specs inline in this process (the default for direct
  calls from tests and benchmarks); ``jobs>1`` fans out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.
- Every spec is content-hashed (function path + canonicalized kwargs +
  the armed fault plan); completed results are written to
  ``<cache-dir>/<hash>.json`` so re-runs and overlapping sweeps are
  free (Figs. 20 and 21 share the HATS study through the cache rather
  than through ad-hoc memoization).
- An append-only ``<cache-dir>/manifest.jsonl`` journals every spec as
  it completes, so an interrupted sweep resumes with ``resume=True`` by
  skipping hashes the journal already records (a truncated final line
  -- the signature of a kill mid-write -- is tolerated and ignored).
- A crashed spec is recorded in the manifest (and as
  ``runs/<slug>/error.json`` when an artifact directory is configured),
  the rest of the sweep still executes, and
  :meth:`ExperimentPool.run_results` raises
  :class:`IncompleteSweepError` at the end so the CLI exits nonzero.

Execution happens on a pluggable :class:`~repro.experiments.backends.
ExecutorBackend` under a **supervision loop** that makes the host side
as fault-tolerant as PR 3 made the simulated machine:

- failures are classified (:mod:`repro.experiments.retry`) as
  *transient* (worker killed, deadline exceeded, hung, dispatch
  ``OSError``) vs *permanent* (the workload raised); transient ones
  are requeued with seeded exponential backoff up to
  ``RetryPolicy.max_attempts``, and the attempt count is journaled;
- every run gets a wall-clock deadline (``RunSpec.deadline_s``, the
  pool's ``run_timeout`` default, CLI ``--run-timeout``) enforced by
  killing the worker -- a timeout is transient;
- a run whose live-phase heartbeat goes stale beyond
  ``hang_intervals`` beats is declared hung: the worker is killed, a
  postmortem stub is written, and the run is requeued;
- cache entries carry a sha256 checksum of their result payload;
  corrupt or truncated entries are quarantined to
  ``<cache-dir>/quarantine/`` and re-executed, never returned;
- SIGINT/SIGTERM drain gracefully: dispatching stops, queued work is
  cancelled, in-flight workers are killed, the (fsynced) manifest
  stays intact, and :class:`SweepInterrupted` tells the operator that
  ``--resume`` continues the sweep.

Determinism is load-bearing: specs are pure functions of their kwargs,
results are assembled in *spec order* (never completion order), and the
float payloads survive the JSON cache bit-exactly (``repr`` round-trip),
so a ``jobs=8`` sweep produces bit-identical figure data to ``jobs=1``
-- with or without injected worker kills, timeouts, and requeues.
``tests/test_pool.py`` and ``tests/test_supervision.py`` enforce this.
"""

import collections
import hashlib
import importlib
import json
import os
import re
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.experiments import retry as retry_taxonomy
from repro.experiments.backends import WorkerDeath, make_backend
from repro.experiments.retry import RetryPolicy
from repro.sim.telemetry.log import ensure_run_logging, get_logger, new_run_id
from repro.workloads.common import RunResult, StudyResult

_log = get_logger("pool")

#: Bump when the cached-payload layout changes; old entries then miss.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# specs and content hashing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulator execution: a function path plus its kwargs.

    ``fn`` is a ``"package.module:function"`` path resolved inside the
    worker, so a spec survives pickling into a subprocess and hashing
    into the cache. ``kwargs`` must be JSON-canonicalizable (dicts,
    lists/tuples, strings, numbers, bools, None). ``label`` is a
    human-readable sweep-local name used in the manifest and artifact
    directories; it is *excluded* from the content hash so overlapping
    sweeps that enumerate the same computation share a cache entry.
    ``deadline_s`` is a per-run wall-clock deadline (None inherits the
    pool's ``run_timeout``); like ``label`` it is host-side policy and
    excluded from the content hash.
    """

    fn: str
    kwargs: dict = field(default_factory=dict)
    label: str = ""
    deadline_s: float = None


def _canonical(value):
    """Reduce ``value`` to JSON-safe types (tuples->lists, numpy->python)."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return _canonical(value.item())
    raise TypeError(f"value {value!r} cannot be canonicalized for a RunSpec")


def canonical_json(payload):
    """The canonical encoding hashed by :func:`spec_hash`."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(spec, faults=None):
    """Content hash of one spec (label excluded, fault plan included)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "fn": spec.fn,
        "kwargs": _canonical(spec.kwargs),
        "faults": faults or None,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def encode_result(result):
    """A JSON-safe payload for a spec's return value.

    :class:`~repro.workloads.common.RunResult` is encoded field by field
    (tuple-keyed access profiles become triples); any other value must
    itself be JSON-canonicalizable.
    """
    if isinstance(result, RunResult):
        try:
            output = _canonical(result.output)
        except TypeError:
            output = None  # non-serializable workload output: drop it
        return {
            "kind": "run_result",
            "name": result.name,
            "cycles": result.cycles,
            "energy_pj": result.energy_pj,
            "stats": _canonical(result.stats),
            "output": output,
            "functional": result.functional,
            "notes": result.notes,
            "energy_breakdown": _canonical(result.energy_breakdown),
            "access_profile": [
                [level, outcome, count]
                for (level, outcome), count in result.access_profile.items()
            ],
        }
    return {"kind": "value", "value": _canonical(result)}


def decode_result(payload):
    """Inverse of :func:`encode_result`."""
    if payload["kind"] == "value":
        return payload["value"]
    return RunResult(
        name=payload["name"],
        cycles=payload["cycles"],
        energy_pj=payload["energy_pj"],
        stats=payload["stats"],
        output=payload["output"],
        functional=payload["functional"],
        notes=payload["notes"],
        energy_breakdown=payload["energy_breakdown"],
        access_profile={
            (level, outcome): count
            for level, outcome, count in payload["access_profile"]
        },
    )


def compute_result_checksum(result_payload):
    """sha256 over the canonical encoding of one cached result payload.

    Stored per cache entry and re-verified on every read, so bit rot,
    truncation, or a torn write is *detected* instead of silently
    decoded into garbage figure data.
    """
    return "sha256:" + hashlib.sha256(
        canonical_json(result_payload).encode()
    ).hexdigest()


def cache_entry_problem(payload):
    """Why a parsed cache entry cannot be trusted, or None if it can.

    Entries written before checksums existed (no ``checksum`` field)
    are accepted unverified for backward compatibility.
    """
    if "result" not in payload:
        return "entry has no result payload"
    stored = payload.get("checksum")
    if stored is None:
        return None
    actual = compute_result_checksum(payload["result"])
    if stored != actual:
        return f"checksum mismatch: stored {stored}, payload hashes to {actual}"
    return None


# ----------------------------------------------------------------------
# the worker (runs inline for jobs=1, in a subprocess otherwise)
# ----------------------------------------------------------------------
def _execute_job(job):
    """Execute one spec; never raises -- errors become the outcome."""
    started = time.perf_counter()
    outcome = {
        "hash": job["hash"],
        "label": job["label"],
        "fn": job["fn"],
        "status": "ok",
        "telemetry_machines": 0,
        "faults_injected": 0,
    }
    telemetry_session = None
    fault_session = None
    flight_session = None
    heartbeat = None
    profiler = None
    if job.get("log_path"):
        # Idempotent: fork-started workers inherit the parent's handler.
        ensure_run_logging(job["log_path"], run_id=job.get("run_id"))
    _log.info(
        "run.start", extra={"hash": job["hash"], "label": job["label"], "fn": job["fn"]}
    )
    try:
        if job.get("heartbeat"):
            from repro.experiments.monitor import HeartbeatWriter

            heartbeat = HeartbeatWriter(
                job["heartbeat"]["dir"],
                job["hash"],
                job["label"],
                interval=job["heartbeat"]["interval"],
            ).start()
        module_name, _, fn_name = job["fn"].partition(":")
        fn = getattr(importlib.import_module(module_name), fn_name)
        if job.get("faults"):
            from repro.sim.faults import FaultSession

            fault_session = FaultSession(job["faults"]).install()
        if job.get("telemetry"):
            from repro.sim.telemetry import TelemetrySession

            telemetry_session = TelemetrySession().install()
        if job.get("flightrec"):
            from repro.sim.telemetry.flightrec import FlightRecorderSession

            flight_session = FlightRecorderSession(job["flightrec"]).install()
        if job.get("profile"):
            from repro.perf.profile import ProfileHarness

            profiler = ProfileHarness()
        try:
            if heartbeat is not None:
                heartbeat.beat(phase="simulating")
            if profiler is not None:
                result = profiler.run(fn, **job["kwargs"])
            else:
                result = fn(**job["kwargs"])
        finally:
            if heartbeat is not None:
                heartbeat.phase = "artifacts"
            if flight_session is not None:
                flight_session.uninstall()
            if telemetry_session is not None:
                telemetry_session.uninstall()
            if fault_session is not None:
                fault_session.uninstall()
        outcome["result"] = encode_result(result)
    except Exception as exc:
        outcome["status"] = "error"
        outcome["error"] = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        _log.error(
            "run.error",
            extra={
                "hash": job["hash"],
                "label": job["label"],
                "error": type(exc).__name__,
                "error_message": str(exc),  # "message" is reserved by logging
            },
        )
        # The flight recorder's whole purpose: a crash leaves evidence.
        if flight_session is not None and job.get("postmortem_dir"):
            try:
                path = flight_session.save_postmortem(job["postmortem_dir"], error=exc)
                if path is not None:
                    outcome["postmortem"] = path
            except Exception as post_exc:
                outcome["postmortem_error"] = (
                    f"{type(post_exc).__name__}: {post_exc}"
                )
    # Per-run artifacts (telemetry traces, fault reports) are written by
    # the worker -- it owns the sessions; partial artifacts from a
    # crashed run are kept for debugging.
    artifacts = job.get("artifacts")
    if artifacts is not None:
        try:
            if telemetry_session is not None and telemetry_session.telemetries:
                telemetry_session.save(artifacts)
                outcome["telemetry_machines"] = len(telemetry_session.telemetries)
            if fault_session is not None and fault_session.controllers:
                fault_session.save(artifacts)
            if profiler is not None and profiler.report is not None:
                profiler.save(artifacts)
                outcome["profiled"] = 1
        except Exception as exc:  # artifact IO must not eat the result
            outcome["artifact_error"] = f"{type(exc).__name__}: {exc}"
    if fault_session is not None:
        outcome["faults_injected"] = fault_session.total_injected
    outcome["elapsed"] = time.perf_counter() - started
    if heartbeat is not None:
        try:
            heartbeat.stop(phase="done" if outcome["status"] == "ok" else "error")
        except OSError:
            pass
    _log.info(
        "run.end",
        extra={
            "hash": job["hash"],
            "label": job["label"],
            "status": outcome["status"],
            "elapsed": outcome["elapsed"],
        },
    )
    return outcome


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class IncompleteSweepError(RuntimeError):
    """Some specs of a sweep failed; the rest completed and are cached."""

    def __init__(self, failures):
        self.failures = failures
        lines = [
            f"{f['label']}: {f['error']['type']}: {f['error']['message']}"
            for f in failures
        ]
        super().__init__(
            f"{len(failures)} run(s) of the sweep failed:\n" + "\n".join(lines)
        )


class SweepInterrupted(RuntimeError):
    """The operator stopped the sweep (SIGINT/SIGTERM graceful drain).

    The manifest is flushed and fsynced before this is raised, so
    every *finished* run is journaled; ``--resume`` re-executes only
    what was still in flight or queued.
    """

    def __init__(self, signame, done, total):
        self.signame = signame
        self.done = done
        self.total = total
        super().__init__(
            f"sweep interrupted by {signame}: {done}/{total} pending run(s) "
            f"finished; the manifest is intact -- rerun with --resume to "
            f"continue where it left off"
        )


class ExperimentPool:
    """Executes :class:`RunSpec` lists with caching, resume, and fan-out.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (or a single pending spec) executes
        inline; ``None`` means ``os.cpu_count()``.
    cache_dir:
        Root of the result cache and manifest journal. ``None`` disables
        all disk state (results are still memoized in-process).
    cache:
        When False, existing ``<hash>.json`` entries are ignored and no
        new ones are written (the manifest is still journaled).
    resume:
        Load the manifest and serve every spec it records as ``ok`` from
        its cache entry -- even when ``cache=False`` -- so an interrupted
        sweep re-executes only what is missing.
    telemetry_dir:
        When set, every executed spec captures telemetry (and its fault
        report / error report) under ``<telemetry_dir>/runs/<slug>/``.
        Artifact capture forces execution: cached results carry no
        fresh traces, so cache *reads* are skipped (writes still happen).
    profile_dir:
        When set, every executed spec runs under the
        :class:`~repro.perf.profile.ProfileHarness` and drops
        ``profile.json`` + ``profile.pstats`` + ``stacks.folded`` beside
        its telemetry artifacts (or under ``<profile_dir>/runs/<slug>/``
        when no telemetry directory is configured). Like telemetry
        capture, profiling forces execution; the profiled results remain
        bit-identical (the harness only observes).
    faults:
        A fault-plan spec string armed on every machine each worker
        builds. Part of the content hash -- faulted results never
        collide with clean ones.
    flightrec:
        Ring capacity (events per machine) for a flight recorder armed
        in every executing worker. On a failed run the ring drains into
        ``postmortem.json`` under the run's artifact directory (or
        ``<cache-dir>/postmortems/<slug>/`` without one). Unlike
        telemetry capture it does NOT force execution -- cached results
        stay served from cache (a cached ``ok`` needs no postmortem).
    log_path:
        JSONL run-log file; the pool and every worker append lifecycle
        records (``run.start``/``run.end``/``run.error``) to it,
        correlated by ``run_id`` and spec hash.
    heartbeat_interval:
        Seconds between per-run heartbeat files under
        ``<cache-dir>/heartbeats/``. ``None`` enables heartbeats at the
        default cadence only for multi-worker sweeps (``jobs > 1``);
        pass a number to force them on (needs a cache dir either way).
    progress:
        Render a live progress line on stderr while the sweep executes.
        ``None`` auto-enables it for multi-worker sweeps on a TTY.
    backend:
        Executor backend: an :class:`~repro.experiments.backends.
        ExecutorBackend` instance, a registered name
        (``"local-inline"``, ``"local-process"``), or None/"auto" --
        inline for one worker, per-job processes otherwise.
    retry:
        The :class:`~repro.experiments.retry.RetryPolicy` for
        transient failures (worker killed, timeout, hang). ``None``
        uses the default policy; ``RetryPolicy(max_attempts=1)``
        disables retry.
    run_timeout:
        Default per-run wall-clock deadline in seconds (a spec's own
        ``deadline_s`` wins). None disables deadlines. Enforced only
        on killable backends -- an inline run cannot be preempted.
    hang_intervals:
        A run whose live-phase heartbeat is older than this many of
        its own beat intervals is declared hung: the worker is killed
        and the run requeued. None disables hang detection (it is
        also off whenever heartbeats are off).
    """

    def __init__(
        self,
        jobs=None,
        cache_dir="results-cache",
        cache=True,
        resume=False,
        telemetry_dir=None,
        profile_dir=None,
        faults=None,
        flightrec=None,
        log_path=None,
        heartbeat_interval=None,
        progress=None,
        backend=None,
        retry=None,
        run_timeout=None,
        hang_intervals=10.0,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache_dir = cache_dir
        self.cache = bool(cache and cache_dir)
        self.telemetry_dir = telemetry_dir
        self.profile_dir = profile_dir
        self.faults = faults
        self.flightrec = int(flightrec) if flightrec else None
        self.log_path = log_path
        self.heartbeat_interval = heartbeat_interval
        self.progress_mode = progress
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(f"retry must be a RetryPolicy, got {self.retry!r}")
        if run_timeout is not None and not float(run_timeout) > 0:
            raise ValueError(f"run_timeout must be > 0 seconds, got {run_timeout!r}")
        self.run_timeout = float(run_timeout) if run_timeout is not None else None
        if hang_intervals is not None and not float(hang_intervals) > 0:
            raise ValueError(
                f"hang_intervals must be > 0 intervals, got {hang_intervals!r}"
            )
        self.hang_intervals = (
            float(hang_intervals) if hang_intervals is not None else None
        )
        self.run_id = new_run_id()
        #: Outcomes of every failed spec across the pool's lifetime.
        self.failures = []
        #: Host-side supervision counters across the pool's lifetime.
        self.supervision = {
            "retries": 0,
            "worker_deaths": 0,
            "timeouts": 0,
            "hangs": 0,
            "quarantined": 0,
        }
        self._memory = {}
        self._report = {}
        self._pending_done = 0
        self._pending_total = 0
        self._log_handle = None
        self._interrupt = None
        self._resumed = self._load_manifest() if (resume and cache_dir) else set()
        if log_path:
            self._log_handle = ensure_run_logging(log_path, run_id=self.run_id)

    # -- journal and cache ---------------------------------------------
    def _manifest_path(self):
        return os.path.join(self.cache_dir, "manifest.jsonl")

    def _load_manifest(self):
        """Hashes recorded ``ok``; tolerates a truncated final line."""
        done = set()
        try:
            with open(self._manifest_path()) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # killed mid-append; the run is not done
                    if entry.get("status") == "ok":
                        done.add(entry.get("hash"))
        except FileNotFoundError:
            pass
        return done

    def _append_manifest(self, outcome, cached):
        if not self.cache_dir:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        self._heal_torn_manifest()
        entry = {
            "hash": outcome["hash"],
            "label": outcome["label"],
            "fn": outcome["fn"],
            "status": outcome["status"],
            "elapsed": outcome.get("elapsed", 0.0),
            "cached": cached,
            "attempts": outcome.get("attempts", 1),
        }
        if outcome["status"] != "ok":
            entry["error"] = {
                "type": outcome["error"]["type"],
                "message": outcome["error"]["message"],
            }
        # flush + fsync before returning: a host crash can then tear at
        # most the final line, which the self-healing path tolerates.
        with open(self._manifest_path(), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _heal_torn_manifest(self):
        """Terminate a torn final line (kill mid-append) before appending.

        Without this, the first append of a resumed sweep would glue its
        JSON onto the torn fragment and corrupt one more entry.
        """
        if getattr(self, "_manifest_healed", False):
            return
        self._manifest_healed = True
        try:
            with open(self._manifest_path(), "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except FileNotFoundError:
            pass

    def _cache_path(self, digest):
        return os.path.join(self.cache_dir, digest + ".json")

    def _load_cached(self, digest):
        if self.telemetry_dir or self.profile_dir:
            return None  # artifacts require a fresh execution
        if not self.cache_dir or not (self.cache or digest in self._resumed):
            return None
        try:
            with open(self._cache_path(digest)) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError:
            self._quarantine(digest, "unparseable JSON (truncated or torn write)")
            return None
        if not isinstance(payload, dict) or payload.get("status") != "ok":
            return None
        problem = cache_entry_problem(payload)
        if problem is not None:
            self._quarantine(digest, problem)
            return None
        return payload

    def _quarantine(self, digest, reason):
        """Move a corrupt cache entry aside; the run will re-execute.

        Quarantined entries land in ``<cache-dir>/quarantine/`` under
        their original name for operator inspection -- never served,
        never silently deleted.
        """
        source = self._cache_path(digest)
        quarantine_dir = os.path.join(self.cache_dir, "quarantine")
        os.makedirs(quarantine_dir, exist_ok=True)
        try:
            os.replace(
                source, os.path.join(quarantine_dir, os.path.basename(source))
            )
        except FileNotFoundError:
            pass
        self.supervision["quarantined"] += 1
        self._bump("quarantined")
        _log.warning("cache.quarantined", extra={"hash": digest, "reason": reason})

    def _store_cached(self, outcome):
        if not self.cache or outcome["status"] != "ok":
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        outcome["checksum"] = compute_result_checksum(outcome["result"])
        path = self._cache_path(outcome["hash"])
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(outcome, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)  # atomic: a kill never leaves a torn entry

    # -- execution ------------------------------------------------------
    def _job(self, spec, digest):
        job = {
            "fn": spec.fn,
            "kwargs": spec.kwargs,
            "hash": digest,
            "label": spec.label or spec.fn,
        }
        if self.faults:
            job["faults"] = self.faults
        if self.telemetry_dir:
            job["telemetry"] = True
        if self.profile_dir:
            job["profile"] = True
        if self.telemetry_dir or self.profile_dir:
            job["artifacts"] = self.run_dir(digest, job["label"])
        if self.flightrec:
            job["flightrec"] = self.flightrec
            postmortem_dir = job.get("artifacts") or self._postmortem_dir(
                digest, job["label"]
            )
            if postmortem_dir:
                job["postmortem_dir"] = postmortem_dir
        if self.log_path:
            job["log_path"] = self.log_path
            job["run_id"] = self.run_id
        deadline = spec.deadline_s if spec.deadline_s is not None else self.run_timeout
        if deadline is not None:
            if not float(deadline) > 0:
                raise ValueError(
                    f"deadline_s must be > 0 seconds, got {deadline!r} "
                    f"for {job['label']}"
                )
            job["deadline_s"] = float(deadline)
        interval = self._heartbeat_interval()
        if interval is not None:
            from repro.experiments.monitor import heartbeat_dir

            job["heartbeat"] = {
                "dir": heartbeat_dir(self.cache_dir),
                "interval": interval,
            }
        return job

    def _heartbeat_interval(self):
        """The heartbeat cadence, or None when heartbeats are off.

        Heartbeats live under the cache dir; without one there is
        nowhere for ``status`` to look, so they stay off. An explicit
        interval forces them on; otherwise only fanned-out sweeps beat
        (inline test/benchmark runs skip the writer thread).
        """
        if not self.cache_dir:
            return None
        if self.heartbeat_interval is not None:
            return float(self.heartbeat_interval)
        from repro.experiments.monitor import DEFAULT_INTERVAL

        return DEFAULT_INTERVAL if self.jobs > 1 else None

    def _postmortem_dir(self, digest, label):
        """Postmortem home when no artifact directory is configured."""
        if not self.cache_dir:
            return None
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-")[:60]
        return os.path.join(self.cache_dir, "postmortems", f"{slug}-{digest[:12]}")

    def run_dir(self, digest, label):
        """Artifact directory for one run under the artifact root.

        Telemetry and profile artifacts share one directory per run; the
        telemetry root wins when both are configured.
        """
        root = self.telemetry_dir or self.profile_dir
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-")[:60]
        return os.path.join(root, "runs", f"{slug}-{digest[:12]}")

    def run(self, specs):
        """Execute ``specs``; returns raw outcome dicts in spec order.

        Every spec executes (or is served from cache) even when others
        fail; failures are journaled and collected on ``self.failures``.
        """
        specs = list(specs)
        self._sweep_heartbeats()
        order = []
        pending = []
        queued = set()
        for spec in specs:
            digest = spec_hash(spec, self.faults)
            order.append(digest)
            if digest in self._memory or digest in queued:
                continue
            cached = self._load_cached(digest)
            if cached is not None:
                self._memory[digest] = cached
                self._bump("cached")
                self._append_manifest(cached, cached=True)
                continue
            queued.add(digest)
            pending.append(self._job(spec, digest))
        self._execute(pending)
        # Clean finish: heartbeat files of the runs just completed are
        # hygiene debt -- sweep them so `status` never reports ghosts.
        self._sweep_heartbeats(order)
        return [self._memory[digest] for digest in order]

    def _sweep_heartbeats(self, extra_hashes=()):
        """Remove heartbeat files of finished/cached runs (ghosts)."""
        if not self.cache_dir:
            return
        from repro.experiments.monitor import read_manifest, sweep_heartbeats

        finished = {entry.get("hash") for entry in read_manifest(self.cache_dir)}
        finished.update(extra_hashes)
        finished.discard(None)
        sweep_heartbeats(self.cache_dir, finished_hashes=finished)

    def run_results(self, specs):
        """Execute ``specs`` and decode their results, in spec order.

        Raises :class:`IncompleteSweepError` after the whole sweep has
        run if any spec failed.
        """
        outcomes = self.run(specs)
        failed = [o for o in outcomes if o["status"] != "ok"]
        if failed:
            raise IncompleteSweepError(failed)
        return [decode_result(o["result"]) for o in outcomes]

    def _execute(self, pending):
        if not pending:
            return
        self._pending_done, self._pending_total = 0, len(pending)
        monitor = self._start_monitor()
        try:
            self._execute_pending(pending)
        finally:
            if monitor is not None:
                monitor.stop()

    def _backend_for(self, pending):
        """The executor backend instance for this batch of jobs.

        The inline fast path cannot preempt a running job, so it is
        only taken when nothing needs preempting: with ``jobs > 1``, a
        single pending run still gets a worker process whenever a
        deadline or hang detection applies. ``jobs=1`` is an explicit
        serial contract and stays inline -- with a warning when that
        leaves a configured deadline unenforced.
        """
        supervised = self._needs_preemption(pending)
        effective_jobs = self.jobs
        if self.backend is None and (self.jobs == 1 or len(pending) == 1):
            if self.jobs == 1:
                effective_jobs = 1
                if supervised:
                    _log.warning(
                        "pool.inline_unsupervised",
                        extra={
                            "detail": "jobs=1 runs inline; deadlines and "
                            "hang kills cannot preempt a blocking call"
                        },
                    )
            elif not supervised:
                effective_jobs = 1  # historical fast path: inline
        return make_backend(self.backend, effective_jobs)

    def _needs_preemption(self, pending):
        """Whether this batch relies on killing a running worker."""
        if any(job.get("deadline_s") is not None for job in pending):
            return True
        return (
            self.hang_intervals is not None
            and self._heartbeat_interval() is not None
        )

    def _execute_pending(self, pending):
        backend = self._backend_for(pending)
        backend.start(min(self.jobs, len(pending)) or 1)
        self._interrupt = None
        restore = self._install_signal_handlers() if backend.supports_kill else None
        try:
            self._supervise(backend, pending)
        finally:
            backend.shutdown()
            if restore:
                for signum, previous in restore.items():
                    signal.signal(signum, previous)

    def _install_signal_handlers(self):
        """SIGINT/SIGTERM set a drain flag instead of killing the sweep.

        Only possible from the main thread (a pool driven from a
        worker thread keeps the process's default handlers).
        """
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}

        def _request_drain(signum, frame):
            self._interrupt = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _request_drain)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
        return previous

    # -- the supervision loop ------------------------------------------
    #: Seconds between supervisor wakeups while work is in flight.
    POLL_S = 0.05
    #: Cap on one poll sleep while only backoff waits exist: PEP 475
    #: resumes an interrupted sleep after the SIGINT handler returns,
    #: so an uncapped backoff wait (up to RetryPolicy.max_delay) would
    #: stall the graceful drain for its full duration.
    BACKOFF_POLL_S = 0.25

    def _supervise(self, backend, pending):
        """Dispatch, watch, retry, and journal one batch of jobs.

        The loop owns three collections: ``queue`` (ready to
        dispatch), ``waiting`` (retries backing off), and ``running``
        (handle -> attempt record). It exits when all three are empty
        -- or raises :class:`SweepInterrupted` after a graceful drain.
        """
        queue = collections.deque(
            {"job": dict(job), "attempt": 1} for job in pending
        )
        waiting = []  # (not_before_monotonic, attempt record)
        running = {}  # backend handle -> attempt record
        while queue or waiting or running:
            if self._interrupt is not None:
                self._drain(backend, queue, waiting, running)
            now = time.monotonic()
            if waiting:
                due = [w for w in waiting if w[0] <= now]
                waiting = [w for w in waiting if w[0] > now]
                queue.extend(record for _t, record in due)
            while queue and backend.capacity() > 0 and self._interrupt is None:
                self._dispatch(backend, queue.popleft(), running, waiting)
            timeout = self._poll_timeout(now, waiting, running)
            for handle, payload in backend.poll(timeout):
                record = running.pop(handle)
                self._complete(record, payload, waiting)
            if running and backend.supports_kill:
                self._enforce_deadlines(backend, running)
                self._detect_hangs(backend, running)

    def _poll_timeout(self, now, waiting, running):
        if running:
            return self.POLL_S
        if waiting:
            due = max(0.0, min(t for t, _r in waiting) - now)
            return min(due, self.BACKOFF_POLL_S)
        return 0.0

    def _dispatch(self, backend, record, running, waiting):
        job = record["job"]
        job["attempt"] = record["attempt"]
        record["started"] = time.monotonic()
        record["started_wall"] = time.time()
        record["kill_reason"] = None
        record["kill_detail"] = ""
        try:
            handle = backend.submit(job)
        except OSError as exc:  # fork/pipe failure: host-side, transient
            self._transient_failure(
                record,
                retry_taxonomy.DISPATCH_ERROR,
                f"{type(exc).__name__}: {exc}",
                waiting,
            )
            return
        running[handle] = record

    def _enforce_deadlines(self, backend, running):
        now = time.monotonic()
        for handle, record in running.items():
            deadline = record["job"].get("deadline_s")
            if deadline is None or record["kill_reason"] is not None:
                continue
            elapsed = now - record["started"]
            if elapsed > deadline:
                record["kill_reason"] = retry_taxonomy.TIMEOUT
                record["kill_detail"] = (
                    f"run exceeded its {deadline:.1f}s deadline "
                    f"({elapsed:.1f}s elapsed); worker killed"
                )
                self.supervision["timeouts"] += 1
                _log.warning(
                    "run.timeout",
                    extra={
                        "hash": record["job"]["hash"],
                        "label": record["job"]["label"],
                        "attempt": record["attempt"],
                        "deadline_s": deadline,
                    },
                )
                backend.kill(handle, reason=retry_taxonomy.TIMEOUT)

    def _detect_hangs(self, backend, running):
        """Kill workers whose live-phase heartbeat went stale."""
        if self.hang_intervals is None or self._heartbeat_interval() is None:
            return
        from repro.experiments.monitor import TERMINAL_PHASES, read_heartbeat

        now_wall = time.time()
        for handle, record in running.items():
            if record["kill_reason"] is not None:
                continue
            beat = read_heartbeat(self.cache_dir, record["job"]["hash"])
            if beat is None or beat.get("phase") in TERMINAL_PHASES:
                continue
            if beat.get("started", 0) < record["started_wall"] - 1.0:
                continue  # a ghost from a previous attempt or sweep
            age = now_wall - beat.get("updated", now_wall)
            horizon = self.hang_intervals * beat.get(
                "interval", self._heartbeat_interval() or 1.0
            )
            if age <= horizon:
                continue
            record["kill_reason"] = retry_taxonomy.HUNG
            record["kill_detail"] = (
                f"live-phase heartbeat stale for {age:.1f}s "
                f"(> {horizon:.1f}s); worker killed"
            )
            self.supervision["hangs"] += 1
            _log.warning(
                "run.hung",
                extra={
                    "hash": record["job"]["hash"],
                    "label": record["job"]["label"],
                    "attempt": record["attempt"],
                    "stale_s": age,
                },
            )
            self._write_hang_postmortem(record, beat)
            backend.kill(handle, reason=retry_taxonomy.HUNG)

    def _complete(self, record, payload, waiting):
        """Classify one finished attempt: done, permanent, or retry."""
        job = record["job"]
        if isinstance(payload, WorkerDeath):
            kind = record["kill_reason"] or retry_taxonomy.WORKER_DIED
            detail = record["kill_detail"] or payload.describe()
            if kind == retry_taxonomy.WORKER_DIED:
                self.supervision["worker_deaths"] += 1
                _log.error(
                    "run.worker_died",
                    extra={
                        "hash": job["hash"],
                        "label": job["label"],
                        "attempt": record["attempt"],
                        "exitcode": payload.exitcode,
                    },
                )
            self._transient_failure(record, kind, detail, waiting)
            return
        # A real outcome dict: ok, or the workload raised (permanent).
        payload["attempts"] = record["attempt"]
        self._finish(payload)

    def _transient_failure(self, record, kind, detail, waiting):
        """Requeue with backoff, or journal a terminal transient error."""
        job = record["job"]
        self._discard_heartbeat(job["hash"])
        if self.retry.allows(record["attempt"]):
            delay = self.retry.delay(record["attempt"], key=job["hash"])
            self.supervision["retries"] += 1
            self._bump("retried")
            _log.info(
                "run.retry",
                extra={
                    "hash": job["hash"],
                    "label": job["label"],
                    "kind": kind,
                    "attempt": record["attempt"] + 1,
                    "max_attempts": self.retry.max_attempts,
                    "delay_s": round(delay, 3),
                },
            )
            waiting.append(
                (
                    time.monotonic() + delay,
                    {"job": job, "attempt": record["attempt"] + 1},
                )
            )
            return
        started = record.get("started")
        self._finish(
            {
                "hash": job["hash"],
                "label": job["label"],
                "fn": job["fn"],
                "status": "error",
                "elapsed": time.monotonic() - started if started else 0.0,
                "telemetry_machines": 0,
                "faults_injected": 0,
                "attempts": record["attempt"],
                "transient": kind,
                "error": {
                    "type": retry_taxonomy.KIND_ERROR_TYPES.get(kind, "WorkerDied"),
                    "message": f"{detail} (attempt {record['attempt']}"
                    f"/{self.retry.max_attempts})",
                    "traceback": "",
                },
            }
        )

    def _discard_heartbeat(self, digest):
        """Drop the dead attempt's heartbeat so the next attempt (and
        hang detection) never reads a stale file."""
        if not self.cache_dir:
            return
        from repro.experiments.monitor import heartbeat_path

        try:
            os.unlink(heartbeat_path(self.cache_dir, digest))
        except OSError:
            pass

    def _write_hang_postmortem(self, record, beat):
        """A SIGKILLed worker cannot drain its flight recorder, so the
        supervisor leaves the postmortem stub in its place."""
        job = record["job"]
        outdir = job.get("postmortem_dir") or self._postmortem_dir(
            job["hash"], job["label"]
        )
        if not outdir:
            return None
        os.makedirs(outdir, exist_ok=True)
        path = os.path.join(outdir, "postmortem.json")
        if os.path.exists(path):  # keep an earlier attempt's evidence
            path = os.path.join(
                outdir, f"postmortem-attempt{record['attempt']}.json"
            )
        payload = {
            "kind": "leviathan-postmortem",
            "reason": "hung",
            "detail": record["kill_detail"],
            "hash": job["hash"],
            "label": job["label"],
            "attempt": record["attempt"],
            "heartbeat": beat,
            "machines": [],
            "note": "worker was SIGKILLed by the pool supervisor; "
            "no in-worker flight-recorder drain was possible",
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def _drain(self, backend, queue, waiting, running):
        """Graceful shutdown: cancel, kill, flush, and raise."""
        signum = self._interrupt
        try:
            signame = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            signame = f"signal {signum}"
        cancelled = len(queue) + len(waiting)
        killed = len(running)
        queue.clear()
        waiting.clear()
        for handle in list(running):
            backend.kill(handle, reason="interrupted")
        backend.shutdown()
        running.clear()
        # Every _append_manifest already flushed + fsynced its line;
        # nothing buffered remains to lose.
        _log.warning(
            "sweep.interrupted",
            extra={
                "signal": signame,
                "finished": self._pending_done,
                "total": self._pending_total,
                "cancelled": cancelled,
                "killed": killed,
            },
        )
        raise SweepInterrupted(signame, self._pending_done, self._pending_total)

    def _start_monitor(self):
        import sys

        enabled = self.progress_mode
        if enabled is None:
            enabled = self.jobs > 1 and sys.stderr.isatty()
        if not enabled or not self.cache_dir:
            return None
        from repro.experiments.monitor import PoolMonitor

        return PoolMonitor(self, self.cache_dir).start()

    def progress(self):
        """``(done, total)`` of the currently executing batch."""
        return self._pending_done, self._pending_total

    def _finish(self, outcome):
        self._memory[outcome["hash"]] = outcome
        self._pending_done += 1
        self._bump("executed")
        self._bump("telemetry_machines", outcome.get("telemetry_machines", 0))
        self._bump("faults_injected", outcome.get("faults_injected", 0))
        self._bump("profiled", outcome.get("profiled", 0))
        if outcome["status"] == "ok":
            self._store_cached(outcome)
        else:
            self._bump("failed")
            self.failures.append(outcome)
            self._write_error_artifact(outcome)
        self._append_manifest(outcome, cached=False)

    def _write_error_artifact(self, outcome):
        if not (self.telemetry_dir or self.profile_dir):
            return
        run_dir = self.run_dir(outcome["hash"], outcome["label"])
        os.makedirs(run_dir, exist_ok=True)
        with open(os.path.join(run_dir, "error.json"), "w") as handle:
            json.dump(
                {
                    "label": outcome["label"],
                    "fn": outcome["fn"],
                    "hash": outcome["hash"],
                    "error": outcome["error"]["type"],
                    "message": outcome["error"]["message"],
                    "traceback": outcome["error"]["traceback"],
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # -- reporting ------------------------------------------------------
    def write_dashboard(self, root=None):
        """Aggregate the sweep's per-run telemetry into the dashboard.

        Writes ``dashboard.json`` + ``dashboard.md`` under ``root``
        (default: the telemetry directory) and returns the summary dict,
        or None when there is nothing to aggregate.
        """
        root = root or self.telemetry_dir
        if not root:
            return None
        from repro.experiments.telemetry_report import write_dashboard

        summary = write_dashboard(root, supervision=self.supervision_summary())
        if summary is not None:
            _log.info(
                "sweep.dashboard",
                extra={"root": root, "runs": summary.get("runs", 0)},
            )
        return summary

    def supervision_summary(self):
        """Host-side supervision rollup for the dashboard and CLI."""
        summary = dict(self.supervision)
        summary["retry_policy"] = {
            "max_attempts": self.retry.max_attempts,
            "base_delay": self.retry.base_delay,
            "factor": self.retry.factor,
            "jitter": self.retry.jitter,
            "jitter_seed": self.retry.jitter_seed,
        }
        summary["run_timeout"] = self.run_timeout
        summary["hang_intervals"] = self.hang_intervals
        return summary

    def _bump(self, key, amount=1):
        if amount:
            self._report[key] = self._report.get(key, 0) + amount

    def consume_report(self):
        """Counters accumulated since the last call (executed/cached/...)."""
        report, self._report = self._report, {}
        return report


# ----------------------------------------------------------------------
# assembly helpers and the shared default pool
# ----------------------------------------------------------------------
def run_study(pool, name, baseline, specs, params=None):
    """Run a study's variant specs and rebuild its ``StudyResult``."""
    study = StudyResult(study=name, baseline=baseline, params=params or {})
    for result in pool.run_results(specs):
        study.add(result)
    return study


_default_pool = None


def default_pool():
    """Process-wide inline pool for direct runner calls (``pool=None``).

    No disk state -- results are memoized in memory only, which is what
    lets Figs. 20 and 21 share one HATS study when called back to back
    (replacing the old module-global memo in ``figures.py``).
    """
    global _default_pool
    if _default_pool is None:
        _default_pool = ExperimentPool(jobs=1, cache_dir=None)
    return _default_pool

"""Summarize ``--telemetry-out`` artifact directories.

``python -m repro.experiments telemetry DIR`` walks ``DIR`` for run
directories (any directory containing both ``trace.json`` and
``metrics.json``), re-validates every trace, and prints a digest of
the headline metrics: span counts, invoke-latency percentiles, NACK
and stall totals, and which windowed time series were captured.
"""

import json
import os

from repro.sim.telemetry.perfetto import load_and_validate


def find_runs(root):
    """Run directories (holding trace.json + metrics.json) under ``root``."""
    runs = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if "trace.json" in filenames and "metrics.json" in filenames:
            runs.append(dirpath)
    return sorted(runs)


def count_with_label(counters, name, label):
    """Sum every ``name{...}`` counter series carrying ``label``.

    Series keys are ``name{k="v",...}`` with sorted labels; matching the
    full key literally would silently read 0 as soon as an extra label
    (an engine id, a tile) is added to the family, so we match the base
    name and membership of the one label we care about.
    """
    total = 0
    for key, value in counters.items():
        base, _brace, labels = key.partition("{")
        if base != name:
            continue
        if label in labels.rstrip("}").split(","):
            total += value
    return total


def _read_json(path):
    """``(payload, problem)`` -- problem is a string when the file is
    missing, torn (killed mid-write), or not a JSON object."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None, f"missing {os.path.basename(path)}"
    except (OSError, ValueError) as exc:
        return None, f"unreadable {os.path.basename(path)}: {exc}"
    if not isinstance(payload, dict):
        return None, f"malformed {os.path.basename(path)}: not an object"
    return payload, None


def _attribution_coverage(run_dir):
    """Coverage from ``attribution.json``, or None when not captured."""
    payload, _problem = _read_json(os.path.join(run_dir, "attribution.json"))
    if not payload or not payload.get("classes"):
        return None
    return payload.get("coverage")


def summarize_run(run_dir):
    """The digest dict for one run directory (validates the trace).

    A partially-written run -- a worker killed mid-sweep leaves a torn
    ``trace.json`` or no ``metrics.json`` at all -- degrades to a digest
    whose ``trace_problems`` names what is wrong, instead of raising and
    taking the whole report down with it.
    """
    try:
        trace, problems = load_and_validate(os.path.join(run_dir, "trace.json"))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        trace, problems = {"traceEvents": []}, [f"unreadable trace.json: {exc}"]
    if not isinstance(trace.get("traceEvents"), list):
        trace, problems = {"traceEvents": []}, problems + [
            "malformed trace.json: no traceEvents list"
        ]
    metrics, metrics_problem = _read_json(os.path.join(run_dir, "metrics.json"))
    if metrics is None:
        metrics = {}
        problems = problems + [metrics_problem]
    meta = metrics.get("meta", {})
    histograms = metrics.get("histograms", {})
    counters = metrics.get("counters", {})
    spans = sum(
        1
        for e in trace["traceEvents"]
        if isinstance(e, dict) and e.get("ph") == "b"
    )
    return {
        "dir": run_dir,
        "cycles": meta.get("cycles"),
        "trace_events": len(trace["traceEvents"]),
        "trace_spans": spans,
        "trace_problems": problems,
        "spans_unclosed": meta.get("spans_unclosed", 0),
        "spans_dropped": meta.get("spans_dropped", 0),
        "spans_orphaned": meta.get("spans_orphaned", 0),
        "attribution_coverage": _attribution_coverage(run_dir),
        "invoke_latency": histograms.get("invoke.latency"),
        "nacks": count_with_label(
            counters, "engine.arrivals", 'outcome="nacked"'
        ),
        "stalls": counters.get("invoke.stall_events", 0),
        "timeseries": sorted(metrics.get("timeseries", {})),
    }


def render(summary):
    """Human-readable lines for one :func:`summarize_run` digest."""
    lines = [f"-- {summary['dir']}"]
    status = "VALID" if not summary["trace_problems"] else "INVALID"
    lines.append(
        f"   trace: {status}, {summary['trace_events']} events, "
        f"{summary['trace_spans']} spans "
        f"(unclosed {summary['spans_unclosed']}, dropped {summary['spans_dropped']}, "
        f"orphaned segments {summary['spans_orphaned']})"
    )
    if summary.get("attribution_coverage") is not None:
        lines.append(
            f"   attribution coverage: "
            f"{summary['attribution_coverage'] * 100:.2f}% "
            f"(run `leviathan explain {summary['dir']}` for the waterfall)"
        )
    for problem in summary["trace_problems"][:5]:
        lines.append(f"   !! {problem}")
    if summary["cycles"] is not None:
        lines.append(f"   cycles: {summary['cycles']:.0f}")
    latency = summary["invoke_latency"]
    if latency and latency.get("count"):
        lines.append(
            f"   invoke.latency: n={latency['count']} mean={latency['mean']:.0f}"
            f" p50<={latency['p50']:.0f} p95<={latency['p95']:.0f}"
            f" p99<={latency['p99']:.0f} max={latency['max']:.0f}"
        )
    lines.append(f"   nacks: {summary['nacks']}  stall events: {summary['stalls']}")
    if summary["timeseries"]:
        names = sorted({key.split("{", 1)[0] for key in summary["timeseries"]})
        lines.append(
            f"   time series: {len(summary['timeseries'])} "
            f"({', '.join(names)})"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the sweep dashboard: one digest across every run of a sweep
# ----------------------------------------------------------------------
def _merge_histogram(dest, snap):
    """Fold one histogram snapshot (bucket-bound -> count) into ``dest``."""
    if not isinstance(snap, dict) or not snap.get("count"):
        return
    dest["count"] += snap.get("count", 0)
    dest["sum"] += snap.get("sum", 0.0)
    for bound, n in (snap.get("buckets") or {}).items():
        dest["buckets"][bound] = dest["buckets"].get(bound, 0) + n
    for field, pick in (("min", min), ("max", max)):
        value = snap.get(field)
        if value is not None:
            dest[field] = value if dest[field] is None else pick(dest[field], value)


def _bucket_percentile(buckets, count, p):
    """Upper-bound ``p``-th percentile from merged bucket counts."""
    if not count or not buckets:
        return 0.0
    rank = -(-count * p // 100)  # ceil without importing math
    seen = 0
    bounds = sorted(buckets, key=float)
    for bound in bounds:
        seen += buckets[bound]
        if seen >= rank:
            return float(bound)
    return float(bounds[-1])


def _empty_component():
    return {
        "total": 0.0,
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
        "buckets": {},
    }


def aggregate_attribution(root):
    """Merge every ``attribution.json`` under ``root`` per request class.

    Per-component histograms merge bucket-wise (the same scheme the
    latency histograms use), so the reported waterfall percentiles are
    sweep-wide; coverage is cycle-weighted across machines. Returns
    ``{}`` when no run captured attribution.
    """
    merged = {}
    for run_dir in find_runs(root):
        payload, _problem = _read_json(
            os.path.join(run_dir, "attribution.json")
        )
        if not payload:
            continue
        for cls, entry in (payload.get("classes") or {}).items():
            dest = merged.setdefault(
                cls,
                {"count": 0, "cycles": 0.0, "residue": 0.0, "components": {}},
            )
            dest["count"] += entry.get("count", 0)
            cycles = entry.get("cycles", 0.0)
            dest["cycles"] += cycles
            dest["residue"] += (1.0 - entry.get("coverage", 1.0)) * cycles
            for component, comp in (entry.get("components") or {}).items():
                comp_dest = dest["components"].setdefault(
                    component, _empty_component()
                )
                comp_dest["total"] += comp.get("total", 0.0)
                _merge_histogram(comp_dest, comp)
    for dest in merged.values():
        cycles = dest["cycles"]
        dest["coverage"] = 1.0 - dest["residue"] / cycles if cycles else 1.0
        del dest["residue"]
        for comp in dest["components"].values():
            count = comp["count"]
            comp["mean"] = comp["sum"] / count if count else 0.0
            comp["share"] = comp["total"] / cycles if cycles else 0.0
            for p in (50, 95, 99):
                comp[f"p{p}"] = _bucket_percentile(comp["buckets"], count, p)
    return merged


def aggregate_sweep(root):
    """Cross-run aggregation of one sweep's telemetry artifacts.

    Counters are summed across runs (and grouped by subsystem -- the
    dotted prefix of the family name); histograms merge their log2
    buckets, so the tail percentiles are sweep-wide, not per-run; fault
    injections and retries come from the telemetry counters plus each
    run's ``fault_report.json`` when one was armed. Partially-written
    runs degrade per :func:`summarize_run` and are tallied as problems.
    """
    runs = find_runs(root)
    counters = {}
    subsystems = {}
    histograms = {}
    cycles = []
    faults_injected = 0
    fault_reports_seen = set()
    nacks = 0
    runs_with_problems = 0
    spans_orphaned = 0
    for run_dir in runs:
        summary = summarize_run(run_dir)
        if summary["trace_problems"]:
            runs_with_problems += 1
        if summary["cycles"] is not None:
            cycles.append(summary["cycles"])
        spans_orphaned += summary["spans_orphaned"]
        metrics, _problem = _read_json(os.path.join(run_dir, "metrics.json"))
        metrics = metrics or {}
        nacks += count_with_label(
            metrics.get("counters") or {}, "engine.arrivals", 'outcome="nacked"'
        )
        for key, value in (metrics.get("counters") or {}).items():
            base = key.partition("{")[0]
            counters[base] = counters.get(base, 0) + value
            prefix = base.split(".", 1)[0]
            subsystems[prefix] = subsystems.get(prefix, 0) + value
        for key, snap in (metrics.get("histograms") or {}).items():
            base = key.partition("{")[0]
            dest = histograms.setdefault(
                base, {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}
            )
            _merge_histogram(dest, snap)
        # The fault session writes fault_report.json one level above the
        # per-machine dirs (runs/<slug>/fault_report.json, beside
        # machine-NN/); tolerate either placement, dedup by path.
        for candidate in (run_dir, os.path.dirname(run_dir)):
            path = os.path.join(candidate, "fault_report.json")
            if path in fault_reports_seen:
                continue
            fault_report, _problem = _read_json(path)
            if fault_report:
                fault_reports_seen.add(path)
                faults_injected += fault_report.get("total_injected") or sum(
                    (fault_report.get("injected") or {}).values()
                )
    for hist in histograms.values():
        count = hist["count"]
        hist["mean"] = hist["sum"] / count if count else 0.0
        for p in (50, 95, 99):
            hist[f"p{p}"] = _bucket_percentile(hist["buckets"], count, p)
    # Serving workloads declare request classes (GET/PUT/SCAN/...); each
    # surfaces as a request.latency.<class> histogram family. Roll them
    # up under their own key so dashboards and CI can assert on
    # per-class tail percentiles without string-matching family names.
    requests = {
        name.partition("request.latency.")[2]: hist
        for name, hist in histograms.items()
        if name.startswith("request.latency.")
    }
    return {
        "kind": "leviathan-dashboard",
        "root": root,
        "runs": len(runs),
        "runs_with_problems": runs_with_problems,
        "cycles": {
            "total": sum(cycles),
            "min": min(cycles) if cycles else None,
            "max": max(cycles) if cycles else None,
        },
        "counters": dict(sorted(counters.items())),
        "subsystems": dict(sorted(subsystems.items())),
        "histograms": dict(sorted(histograms.items())),
        "requests": dict(sorted(requests.items())),
        "attribution": aggregate_attribution(root),
        "spans_orphaned": spans_orphaned,
        "faults_injected": faults_injected,
        "retries": counters.get("invoke.retries_observed", 0),
        "nacks": nacks,
        "stalls": counters.get("invoke.stall_events", 0),
        "watchdog_fired": counters.get("watchdog.fired", 0),
    }


def render_dashboard(agg):
    """The markdown dashboard for one :func:`aggregate_sweep` digest."""
    lines = [
        f"# Sweep dashboard: {agg['root']}",
        "",
        f"- runs aggregated: **{agg['runs']}**"
        + (
            f" ({agg['runs_with_problems']} with problems)"
            if agg["runs_with_problems"]
            else ""
        ),
    ]
    supervision = agg.get("supervision")
    if supervision is not None:
        lines.append(
            f"- host supervision: **{supervision.get('retries', 0)}** retries,"
            f" **{supervision.get('worker_deaths', 0)}** worker deaths,"
            f" **{supervision.get('timeouts', 0)}** deadline kills,"
            f" **{supervision.get('hangs', 0)}** hang kills,"
            f" **{supervision.get('quarantined', 0)}** cache entries quarantined"
        )
    lines += [
        f"- total simulated cycles: **{agg['cycles']['total']:.0f}**"
        f" (min {agg['cycles']['min']}, max {agg['cycles']['max']})"
        if agg["cycles"]["min"] is not None
        else "- total simulated cycles: n/a",
        f"- faults injected: **{agg['faults_injected']}**,"
        f" retries observed: **{agg['retries']}**,"
        f" NACKs: **{agg['nacks']}**,"
        f" stall events: **{agg['stalls']}**,"
        f" watchdog firings: **{agg['watchdog_fired']}**",
        "",
        "## Latency percentiles (sweep-wide)",
        "",
        "| histogram | n | mean | p50 | p95 | p99 | max |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, hist in agg["histograms"].items():
        if not hist["count"]:
            continue
        lines.append(
            f"| {name} | {hist['count']} | {hist['mean']:.1f} "
            f"| {hist['p50']:.0f} | {hist['p95']:.0f} | {hist['p99']:.0f} "
            f"| {hist['max']:.0f} |"
        )
    requests = agg.get("requests") or {}
    if any(hist["count"] for hist in requests.values()):
        lines += [
            "",
            "## Request-class latency percentiles (serving workloads)",
            "",
            "| class | n | mean | p50 | p95 | p99 | max |",
            "|---|---|---|---|---|---|---|",
        ]
        for cls, hist in requests.items():
            if not hist["count"]:
                continue
            lines.append(
                f"| {cls} | {hist['count']} | {hist['mean']:.1f} "
                f"| {hist['p50']:.0f} | {hist['p95']:.0f} | {hist['p99']:.0f} "
                f"| {hist['max']:.0f} |"
            )
    attribution = agg.get("attribution") or {}
    if any(entry["count"] for entry in attribution.values()):
        lines += [
            "",
            "## Latency attribution waterfall (critical-path cycles per class)",
            "",
        ]
        if agg.get("spans_orphaned"):
            lines.append(
                f"orphaned span segments (excluded from attribution): "
                f"**{agg['spans_orphaned']}**"
            )
            lines.append("")
        lines += [
            "| class | component | cycles | share | p50 | p95 | p99 |",
            "|---|---|---|---|---|---|---|",
        ]
        for cls in sorted(attribution):
            entry = attribution[cls]
            if not entry["count"]:
                continue
            for component in sorted(
                entry["components"],
                key=lambda c: -entry["components"][c]["total"],
            ):
                comp = entry["components"][component]
                if not comp["total"]:
                    continue
                lines.append(
                    f"| {cls} | {component} | {comp['total']:.0f} "
                    f"| {comp['share'] * 100:.1f}% | {comp['p50']:.0f} "
                    f"| {comp['p95']:.0f} | {comp['p99']:.0f} |"
                )
        coverages = ", ".join(
            f"{cls} {entry['coverage'] * 100:.2f}%"
            for cls, entry in sorted(attribution.items())
            if entry["count"]
        )
        lines += ["", f"attribution coverage: {coverages}"]
    lines += [
        "",
        "## Per-subsystem counter totals",
        "",
        "| subsystem | total |",
        "|---|---|",
    ]
    for name, total in agg["subsystems"].items():
        lines.append(f"| {name} | {total} |")
    lines.append("")
    return "\n".join(lines)


def write_dashboard(root, supervision=None):
    """Aggregate ``root`` and drop ``dashboard.json`` + ``dashboard.md``.

    ``supervision`` is the pool's host-side rollup (retries, hang and
    deadline kills, quarantined cache entries -- see
    :meth:`~repro.experiments.pool.ExperimentPool.supervision_summary`)
    and is embedded verbatim when given. Returns the aggregate dict, or
    None when the sweep left no runs to aggregate (nothing is written
    in that case).
    """
    agg = aggregate_sweep(root)
    if supervision is not None:
        agg["supervision"] = supervision
    if not agg["runs"]:
        return None
    with open(os.path.join(root, "dashboard.json"), "w") as handle:
        json.dump(agg, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(os.path.join(root, "dashboard.md"), "w") as handle:
        handle.write(render_dashboard(agg))
    return agg


def report(root):
    """Summarize every run under ``root``; returns (text, ok)."""
    runs = find_runs(root)
    if not runs:
        return f"no telemetry runs under {root}", False
    sections = []
    ok = True
    for run_dir in runs:
        summary = summarize_run(run_dir)
        sections.append(render(summary))
        if summary["trace_problems"]:
            ok = False
    sections.append(
        f"{len(runs)} run(s); open trace.json files in https://ui.perfetto.dev"
    )
    return "\n".join(sections), ok

"""Summarize ``--telemetry-out`` artifact directories.

``python -m repro.experiments telemetry DIR`` walks ``DIR`` for run
directories (any directory containing both ``trace.json`` and
``metrics.json``), re-validates every trace, and prints a digest of
the headline metrics: span counts, invoke-latency percentiles, NACK
and stall totals, and which windowed time series were captured.
"""

import json
import os

from repro.sim.telemetry.perfetto import load_and_validate


def find_runs(root):
    """Run directories (holding trace.json + metrics.json) under ``root``."""
    runs = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if "trace.json" in filenames and "metrics.json" in filenames:
            runs.append(dirpath)
    return sorted(runs)


def count_with_label(counters, name, label):
    """Sum every ``name{...}`` counter series carrying ``label``.

    Series keys are ``name{k="v",...}`` with sorted labels; matching the
    full key literally would silently read 0 as soon as an extra label
    (an engine id, a tile) is added to the family, so we match the base
    name and membership of the one label we care about.
    """
    total = 0
    for key, value in counters.items():
        base, _brace, labels = key.partition("{")
        if base != name:
            continue
        if label in labels.rstrip("}").split(","):
            total += value
    return total


def summarize_run(run_dir):
    """The digest dict for one run directory (validates the trace)."""
    trace, problems = load_and_validate(os.path.join(run_dir, "trace.json"))
    with open(os.path.join(run_dir, "metrics.json")) as handle:
        metrics = json.load(handle)
    meta = metrics.get("meta", {})
    histograms = metrics.get("histograms", {})
    counters = metrics.get("counters", {})
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "b")
    return {
        "dir": run_dir,
        "cycles": meta.get("cycles"),
        "trace_events": len(trace["traceEvents"]),
        "trace_spans": spans,
        "trace_problems": problems,
        "spans_unclosed": meta.get("spans_unclosed", 0),
        "spans_dropped": meta.get("spans_dropped", 0),
        "invoke_latency": histograms.get("invoke.latency"),
        "nacks": count_with_label(
            counters, "engine.arrivals", 'outcome="nacked"'
        ),
        "stalls": counters.get("invoke.stall_events", 0),
        "timeseries": sorted(metrics.get("timeseries", {})),
    }


def render(summary):
    """Human-readable lines for one :func:`summarize_run` digest."""
    lines = [f"-- {summary['dir']}"]
    status = "VALID" if not summary["trace_problems"] else "INVALID"
    lines.append(
        f"   trace: {status}, {summary['trace_events']} events, "
        f"{summary['trace_spans']} spans "
        f"(unclosed {summary['spans_unclosed']}, dropped {summary['spans_dropped']})"
    )
    for problem in summary["trace_problems"][:5]:
        lines.append(f"   !! {problem}")
    if summary["cycles"] is not None:
        lines.append(f"   cycles: {summary['cycles']:.0f}")
    latency = summary["invoke_latency"]
    if latency and latency.get("count"):
        lines.append(
            f"   invoke.latency: n={latency['count']} mean={latency['mean']:.0f}"
            f" p50<={latency['p50']:.0f} p95<={latency['p95']:.0f}"
            f" p99<={latency['p99']:.0f} max={latency['max']:.0f}"
        )
    lines.append(f"   nacks: {summary['nacks']}  stall events: {summary['stalls']}")
    if summary["timeseries"]:
        names = sorted({key.split("{", 1)[0] for key in summary["timeseries"]})
        lines.append(
            f"   time series: {len(summary['timeseries'])} "
            f"({', '.join(names)})"
        )
    return "\n".join(lines)


def report(root):
    """Summarize every run under ``root``; returns (text, ok)."""
    runs = find_runs(root)
    if not runs:
        return f"no telemetry runs under {root}", False
    sections = []
    ok = True
    for run_dir in runs:
        summary = summarize_run(run_dir)
        sections.append(render(summary))
        if summary["trace_problems"]:
            ok = False
    sections.append(
        f"{len(runs)} run(s); open trace.json files in https://ui.perfetto.dev"
    )
    return "\n".join(sections), ok

"""The experiment harness: one module per table/figure of the paper.

Each ``figN_*`` / ``tableN_*`` module exposes a ``run()`` function that
executes the experiment at reproduction scale and returns an
:class:`~repro.experiments.runner.Experiment` whose ``rows`` mirror the
series the paper reports, plus a ``check()`` on the qualitative shape
(who wins, roughly by how much, where the knees fall).

``python -m repro.experiments <name>`` (or the ``leviathan-repro``
entry point) runs them from the command line.
"""

from repro.experiments.runner import Experiment, ExperimentRegistry

registry = ExperimentRegistry()

__all__ = ["Experiment", "registry"]

"""Retry policy and failure taxonomy for the supervised executor.

The pool's supervision loop (:mod:`repro.experiments.pool`) classifies
every failed run attempt into one of two buckets:

- **transient** -- the *host* failed, not the workload: the worker
  process died (OOM killer, SIGKILL, a chaos hook), the run exceeded
  its wall-clock deadline, its heartbeat went stale (hung worker), or
  the backend hit an :class:`OSError` dispatching it. Transient
  failures are requeued with seeded exponential backoff until
  :attr:`RetryPolicy.max_attempts` is exhausted.
- **permanent** -- the *workload* raised. Re-running a deterministic
  simulator on the same kwargs reproduces the same exception, so these
  are journaled as ``error`` outcomes immediately (the pre-existing
  failure policy).

Backoff jitter is *seeded* (sha256 over ``(jitter_seed, key,
attempt)``), so a retried sweep schedules identically on every replay
-- determinism is load-bearing everywhere in this repo, including in
its failure handling.
"""

import hashlib
from dataclasses import dataclass

#: Failure kinds the supervisor may attach to a dead attempt.
WORKER_DIED = "worker-died"
TIMEOUT = "timeout"
HUNG = "hung"
DISPATCH_ERROR = "dispatch-error"

#: Kinds that are retried; anything else is permanent.
TRANSIENT_KINDS = frozenset({WORKER_DIED, TIMEOUT, HUNG, DISPATCH_ERROR})

#: Manifest/exception type names for terminal transient failures.
KIND_ERROR_TYPES = {
    WORKER_DIED: "WorkerDied",
    TIMEOUT: "RunTimeout",
    HUNG: "RunHung",
    DISPATCH_ERROR: "DispatchError",
}


def is_transient(kind):
    """True when failure ``kind`` is worth another attempt."""
    return kind in TRANSIENT_KINDS


def classify_exception(exc):
    """Failure kind for an exception raised *around* a run (not by it).

    ``BrokenProcessPool``/``BrokenExecutor`` means a worker process
    vanished; ``OSError`` (fork failure, pipe error) is a host-side
    dispatch problem; ``TimeoutError`` maps to the deadline kind.
    Anything else is the workload's own exception: permanent.
    """
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover
        BrokenProcessPool = ()
    if isinstance(exc, BrokenProcessPool):
        return WORKER_DIED
    if isinstance(exc, TimeoutError):
        return TIMEOUT
    if isinstance(exc, OSError):
        return DISPATCH_ERROR
    return "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries transient failures.

    ``max_attempts`` counts *total* attempts (1 disables retry);
    ``base_delay`` seconds before the second attempt, multiplied by
    ``factor`` per subsequent attempt and capped at ``max_delay``;
    ``jitter`` is the +/- fraction of the delay randomized by the
    seeded stream (0 disables jitter). All values are validated at
    construction so a bad config fails loudly, not mid-sweep.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    factor: float = 2.0
    jitter: float = 0.1
    jitter_seed: int = 0
    max_delay: float = 30.0

    def __post_init__(self):
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay!r}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1.0, got {self.factor!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter!r}")
        if not isinstance(self.jitter_seed, int):
            raise ValueError(f"jitter_seed must be an int, got {self.jitter_seed!r}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay!r}) must be >= "
                f"base_delay ({self.base_delay!r})"
            )

    def delay(self, attempt, key=""):
        """Backoff before the attempt *after* failed attempt ``attempt``.

        Deterministic: the jitter fraction comes from a sha256 stream
        over ``(jitter_seed, key, attempt)``, so a resumed or replayed
        sweep backs off identically. ``key`` is conventionally the
        spec's content hash.
        """
        if attempt < 1:
            raise ValueError(f"attempt counts from 1, got {attempt!r}")
        raw = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        if self.jitter and raw > 0:
            digest = hashlib.sha256(
                f"{self.jitter_seed}:{key}:{attempt}".encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            raw *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return raw

    def allows(self, attempt):
        """True when attempt number ``attempt`` + 1 may still run."""
        return attempt < self.max_attempts

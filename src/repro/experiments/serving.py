"""Serving-zoo experiments: KV serving, KV-cache paging, storage pushdown.

The zoo workloads (:mod:`repro.workloads.serving`) are not paper
figures -- they are the generality claim of Sec. V exercised on
serving- and storage-shaped traffic. Each ``run_serve_*`` enumerates
its study into :class:`~repro.experiments.pool.RunSpec` entries,
executes them on an experiment pool (parallel, cached, resumable like
the figure sweeps), and checks:

- functional equality against each workload's oracle (enforced inside
  the runs themselves -- a wrong answer raises);
- measured speedup bands for the regimes where near-data execution
  should win, and honest near-ties where it should not;
- request-class latency percentile sanity (``p50 <= p95 <= p99``) from
  the :class:`~repro.sim.telemetry.requests.RequestLatencyProbe`
  fields that the sweep dashboard also renders;
- for trace replay, bit-identical cycles/output between a replayed
  synthesized trace and the direct run it was synthesized from.
"""

from repro.experiments.pool import RunSpec, default_pool, run_study
from repro.experiments.runner import Experiment
from repro.workloads.common import StudyResult
from repro.workloads.serving import tracereplay

_KV = "repro.workloads.serving.kvserve:"
_PAGE = "repro.workloads.serving.kvpaging:"
_SCAN = "repro.workloads.serving.nearstorage:"
_REPLAY = "repro.workloads.serving.tracereplay:"


def _kv_specs(params):
    return [
        RunSpec(_KV + "run_baseline", {"params": params}, "serve-kv/baseline"),
        RunSpec(_KV + "run_leviathan", {"params": params}, "serve-kv/leviathan"),
        RunSpec(_KV + "run_leviathan", {"params": params, "ideal": True}, "serve-kv/ideal"),
    ]


def _percentile_expectations(exp, result, classes):
    """Shared percentile sanity: populated, ordered, dashboard-ready."""
    for cls in classes:
        count = result.stat(f"request.{cls}.count")
        p50 = result.stat(f"request.{cls}.p50")
        p95 = result.stat(f"request.{cls}.p95")
        p99 = result.stat(f"request.{cls}.p99")
        exp.expect(f"{cls}: requests observed", "greater", count, 0)
        exp.expect(f"{cls}: p50 <= p95 <= p99", "ordering", [p50, p95, p99])
        exp.expect(f"{cls}: latencies positive", "greater", p50, 0)


def run_serve_kv(params=None, pool=None):
    """KV request serving: offloaded GET/PUT + streamed scans."""
    pool = pool or default_pool()
    study = run_study(pool, "KV serving", "baseline", _kv_specs(params), params=params)
    exp = Experiment(
        name="KV request serving (serving zoo)",
        paper_reference="Sec. V generality; memcached-shaped traffic",
        notes=(
            "Open-loop Poisson clients; GET/PUT offload to bucket actors at "
            "their banks, range scans stream back. Leviathan should beat the "
            "host-side server modestly (requests are small; the win is "
            "locality, not bandwidth) with per-class tail latency recorded."
        ),
    )
    speedups = study.speedups()
    for name, result in study.results.items():
        exp.add_row(
            variant=name,
            speedup=speedups[name],
            cycles=result.cycles,
            get_p99=result.stat("request.get.p99"),
            put_p99=result.stat("request.put.p99"),
            scan_p99=result.stat("request.scan.p99"),
        )
    exp.expect("Leviathan beats host-side serving", "greater", speedups["leviathan"], 1.02)
    exp.expect("win is modest (locality-bound)", "less", speedups["leviathan"], 1.6)
    if "ideal" in study.results:
        gap = abs(speedups["ideal"] - speedups["leviathan"]) / speedups["leviathan"]
        exp.expect("Leviathan close to ideal", "less", gap, 0.10)
    _percentile_expectations(exp, study["leviathan"], ("get", "put", "scan"))
    exp.expect(
        "scans are slower than point GETs (tail)",
        "greater",
        study["leviathan"].stat("request.scan.p99"),
        study["leviathan"].stat("request.get.p99"),
    )
    # Fault-free runs must attribute essentially every request cycle to
    # a named critical-path component (`leviathan explain` honesty bar).
    for cls in ("get", "put", "scan"):
        exp.expect(
            f"{cls}: attribution coverage >= 99%",
            "greater",
            study["leviathan"].stat(f"attribution.{cls}.coverage"),
            0.99,
        )
    return exp


def run_serve_paging(params=None, pool=None, reuse_distances=(8, 128)):
    """KV-cache paging across locality regimes (morph vs software pager)."""
    pool = pool or default_pool()
    fit, thrash = reuse_distances
    grid = {}
    flat = []
    for rd in reuse_distances:
        p = dict(params or {})
        p["reuse_distance"] = rd
        specs = [
            RunSpec(_PAGE + "run_baseline", {"params": p}, f"serve-paging/rd{rd}/baseline"),
            RunSpec(_PAGE + "run_leviathan", {"params": p}, f"serve-paging/rd{rd}/leviathan"),
        ]
        grid[rd] = (p, specs)
        flat.extend(specs)
    results = pool.run_results(flat)
    studies = {}
    cursor = 0
    for rd, (p, specs) in grid.items():
        study = StudyResult(study=f"KV-cache paging rd={rd}", baseline="baseline", params=p)
        for result in results[cursor : cursor + len(specs)]:
            study.add(result)
        cursor += len(specs)
        studies[rd] = study
    exp = Experiment(
        name="LLM KV-cache paging (serving zoo)",
        paper_reference="Sec. V generality; Proxics-shaped far memory",
        notes=(
            "Warm stack-distance traffic. When the reuse window fits the "
            "fast tier the morph only matches the software pager; when it "
            "thrashes, data-triggered page-in/out beats fault software and "
            "static partitioning clearly."
        ),
    )
    speed = {}
    for rd, study in studies.items():
        speedups = study.speedups()
        speed[rd] = speedups["leviathan"]
        for name, result in study.results.items():
            exp.add_row(
                reuse_distance=rd,
                variant=name,
                speedup=speedups[name],
                cycles=result.cycles,
                decode_p99=result.stat("request.decode.p99"),
            )
    exp.expect(
        "baseline degrades as the reuse window outgrows the fast tier",
        "ordering",
        [studies[fit]["baseline"].cycles, studies[thrash]["baseline"].cycles],
    )
    exp.expect(
        "morph degrades more gently than the software pager",
        "greater",
        (studies[thrash]["baseline"].cycles / studies[fit]["baseline"].cycles)
        - (studies[thrash]["leviathan"].cycles / studies[fit]["leviathan"].cycles),
        0.0,
    )
    exp.expect("fitting regime: near-tie (no regression)", "between", speed[fit], 0.9, 1.3)
    exp.expect("thrashing regime: clear morph win", "between", speed[thrash], 1.5, 3.0)
    _percentile_expectations(exp, studies[thrash]["leviathan"], ("decode",))
    return exp


def _scan_specs(params):
    return [
        RunSpec(_SCAN + "run_baseline", {"params": params}, "serve-scan/baseline"),
        RunSpec(_SCAN + "run_leviathan", {"params": params}, "serve-scan/leviathan"),
        RunSpec(
            _SCAN + "run_leviathan", {"params": params, "ideal": True}, "serve-scan/ideal"
        ),
    ]


def run_serve_scan(params=None, pool=None):
    """Near-storage scan/filter/join pushdown vs host-side scanning."""
    pool = pool or default_pool()
    study = run_study(
        pool, "Near-storage scan", "baseline", _scan_specs(params), params=params
    )
    exp = Experiment(
        name="Near-storage scan/filter/join (serving zoo)",
        paper_reference="Sec. V generality; Conduit-shaped pushdown",
        notes=(
            "A fact table 8x the LLC, scanned by per-chunk tasks at their "
            "banks; only aggregates return. Bank-parallel pushdown should "
            "win big over shipping every row to the cores."
        ),
    )
    speedups = study.speedups()
    for name, result in study.results.items():
        exp.add_row(
            variant=name,
            speedup=speedups[name],
            cycles=result.cycles,
            scan_p99=result.stat("request.storage_scan.p99"),
            scan_count=result.stat("request.storage_scan.count"),
        )
    exp.expect("pushdown wins big", "between", speedups["leviathan"], 2.5, 5.5)
    if "ideal" in study.results:
        gap = abs(speedups["ideal"] - speedups["leviathan"]) / speedups["leviathan"]
        exp.expect("Leviathan close to ideal", "less", gap, 0.10)
    _percentile_expectations(exp, study["leviathan"], ("storage_scan",))
    exp.expect(
        "every chunk scan observed",
        "greater",
        study["leviathan"].stat("request.storage_scan.count"),
        100,
    )
    # The pushdown story in one number: the attribution waterfall should
    # blame the memory system (NoC transit + DRAM service + cache walk),
    # not engine compute, for the bulk of scan-request cycles.
    lev = study["leviathan"]
    memory_bound = sum(
        lev.stat(f"attribution.storage_scan.{component}.total")
        for component in ("noc_transit", "dram_service", "cache_walk")
    )
    cycles = lev.stat("attribution.storage_scan.cycles")
    exp.expect(
        "scan requests are memory-bound (NoC+DRAM+cache majority)",
        "greater",
        memory_bound / cycles if cycles else 0.0,
        0.5,
    )
    exp.expect(
        "storage_scan: attribution coverage >= 99%",
        "greater",
        lev.stat("attribution.storage_scan.coverage"),
        0.99,
    )
    return exp


def run_serve_replay(params=None, pool=None):
    """Trace replay: a synthesized JSONL trace reproduces the direct run."""
    pool = pool or default_pool()
    trace = tracereplay.synthesize_trace(params)
    specs = [
        RunSpec(_KV + "run_leviathan", {"params": params}, "serve-replay/direct"),
        RunSpec(
            _REPLAY + "run_replay",
            {"trace": trace, "params": params},
            "serve-replay/replay",
        ),
    ]
    direct, replay = pool.run_results(specs)
    exp = Experiment(
        name="KV trace replay (serving zoo)",
        paper_reference="RunSpec-compatible JSONL trace driver",
        notes=(
            "The synthetic schedule round-trips through the flat JSONL trace "
            "format and replays bit-identically: same cycles, same output, "
            "same request-class percentiles as the direct run."
        ),
    )
    for result in (direct, replay):
        exp.add_row(
            variant=result.name,
            cycles=result.cycles,
            output_len=len(result.output) if result.output is not None else 0,
            get_p99=result.stat("request.get.p99"),
        )
    exp.expect("trace parsed", "greater", len(trace), 0)
    exp.expect(
        "replay cycles bit-identical", "between", replay.cycles, direct.cycles, direct.cycles
    )
    exp.expect(
        "replay output identical", "between", int(replay.output == direct.output), 1, 1
    )
    exp.expect(
        "replay stats identical (all request-class fields)",
        "between",
        int(
            all(
                replay.stat(key) == value
                for key, value in direct.stats.items()
                if key.startswith("request.")
            )
        ),
        1,
        1,
    )
    return exp

"""Figures 22-25: sensitivity studies.

Smaller workload instances than the headline figures (each point is a
full simulation), with the knee positions checked rather than absolute
factors. Every point is enumerated as a
:class:`~repro.experiments.pool.RunSpec` and executed on the experiment
pool, so a sweep parallelizes across its points under ``--jobs N`` and
overlapping points are served from the result cache. Config surgery
the sweeps used to do by monkey-patching workload modules (the fixed
mid-sized LLC of Fig. 23, the pinned table size of Fig. 24) now
travels *inside* the spec as ``config_overrides`` / ``table_bytes``
kwargs, so a point is reproducible from its spec alone.
"""

from repro.experiments.pool import RunSpec, default_pool
from repro.experiments.runner import Experiment
from repro.workloads import hashtable

_PHI = "repro.workloads.phi:"
_HT = "repro.workloads.hashtable:"
_HATS = "repro.workloads.hats:"

#: Reduced PHI instance for the invoke-buffer sweep (5 full runs).
_PHI_SWEEP_PARAMS = dict(n_vertices=2048, n_edges=16384, n_threads=16, seed=7)
#: Reduced HATS instance for the stream-buffer sweep.
_HATS_SWEEP_PARAMS = dict(
    n_vertices=2048, n_edges=24576, n_communities=32, seed=31
)
#: Reduced hash-table instance for the input-size / system-size sweeps.
_HT_SWEEP_PARAMS = dict(nodes_per_bucket=32, n_threads=16, lookups_per_thread=48)

#: Fig. 23 holds the LLC at a mid size so the circular buffer's
#: footprint is not itself a capacity effect (in the paper's 8 MB LLC a
#: <=2 KB buffer is invisible; in the micro-scaled hierarchy it would
#: not be).
_FIG23_LLC_OVERRIDES = {
    "llc.size_kb": 4,
    "llc.ways": 8,
    "llc.tag_latency": 3,
    "llc.data_latency": 5,
    "llc.replacement": "rrip",
}


def run_fig22(buffer_sizes=(1, 2, 4, 8, 16), params=None, pool=None):
    """Invoke-buffer sensitivity with PHI (Fig. 22).

    Paper: one or two entries slow Leviathan through queueing
    backpressure; performance plateaus after four.
    """
    pool = pool or default_pool()
    exp = Experiment(
        name="Invoke-buffer sensitivity (PHI)",
        paper_reference="Fig. 22",
        notes="Paper: slow with 1-2 entries, plateau at >= 4.",
    )
    sweep_params = params or _PHI_SWEEP_PARAMS
    specs = [
        RunSpec(
            _PHI + "run_leviathan",
            {"params": sweep_params, "invoke_buffer": entries},
            f"fig22/buf{entries}",
        )
        for entries in buffer_sizes
    ]
    cycles = {}
    for entries, result in zip(buffer_sizes, pool.run_results(specs)):
        cycles[entries] = result.cycles
        exp.add_row(
            invoke_buffer_entries=entries,
            cycles=result.cycles,
            stalls=result.stat("invoke.stalls"),
        )
    for row in exp.rows:
        row["relative_performance"] = cycles[max(buffer_sizes)] / row["cycles"]
    exp.expect(
        "1-entry buffer is slower than 4 entries",
        "greater",
        cycles[1] / cycles[4],
        1.02,
    )
    plateau = max(
        abs(cycles[e] - cycles[max(buffer_sizes)]) / cycles[max(buffer_sizes)]
        for e in buffer_sizes
        if e >= 4
    )
    exp.expect("plateau from 4 entries on (<5% spread)", "less", plateau, 0.05)
    return exp


def run_fig23(buffer_sizes=(16, 32, 64, 128), params=None, pool=None):
    """Stream-buffer sensitivity with HATS (Fig. 23).

    Paper: performance plateaus at 64 entries; the buffer lives in
    memory, so its capacity is free.
    """
    pool = pool or default_pool()
    exp = Experiment(
        name="Stream-buffer sensitivity (HATS)",
        paper_reference="Fig. 23",
        notes="Paper: plateau at 64 entries.",
    )
    specs = []
    for entries in buffer_sizes:
        sweep_params = dict(params or _HATS_SWEEP_PARAMS)
        sweep_params["stream_buffer"] = entries
        specs.append(
            RunSpec(
                _HATS + "run_leviathan",
                {"params": sweep_params, "config_overrides": _FIG23_LLC_OVERRIDES},
                f"fig23/buf{entries}",
            )
        )
    cycles = {}
    for entries, result in zip(buffer_sizes, pool.run_results(specs)):
        cycles[entries] = result.cycles
        exp.add_row(
            stream_buffer_entries=entries,
            cycles=result.cycles,
            consume_blocks=result.stat("stream.consume_blocks"),
        )
    for row in exp.rows:
        row["relative_performance"] = cycles[64] / row["cycles"]
    exp.expect(
        "small buffers hurt (consumer stalls on the producer)",
        "greater",
        cycles[min(buffer_sizes)] / cycles[64],
        1.0,
    )
    plateau = max(
        abs(cycles[e] - cycles[64]) / cycles[64] for e in buffer_sizes if e >= 64
    )
    exp.expect("plateau from 64 entries on (<3% spread)", "less", plateau, 0.03)
    exp.expect(
        "consumer stalls shrink as the buffer grows",
        "ordering",
        [exp.rows[i]["consume_blocks"] for i in range(len(exp.rows) - 1, -1, -1)],
    )
    return exp


def run_fig24(bucket_counts=(16, 32, 64, 128, 256), params=None, pool=None):
    """Input-size sensitivity with hash-table lookups (Fig. 24).

    The LLC is held at the size chosen for the default (64-bucket)
    table; the table grows through it. Paper: Leviathan performs well
    while the data fits the LLC, then drops as DRAM latency swamps the
    NoC savings.
    """
    pool = pool or default_pool()
    exp = Experiment(
        name="Input-size sensitivity (hash table)",
        paper_reference="Fig. 24",
        notes="Paper: speedup holds while the table fits the LLC, drops beyond.",
    )
    reference = dict(params or _HT_SWEEP_PARAMS)
    reference["n_buckets"] = 64
    reference["object_size"] = 64
    fixed_table_bytes = hashtable._padded_table_bytes(
        {**hashtable.DEFAULT_PARAMS, **reference}
    )

    specs = []
    point_params = []
    for n_buckets in bucket_counts:
        p = dict(reference)
        p["n_buckets"] = n_buckets
        point_params.append(p)
        specs.append(
            RunSpec(
                _HT + "run_baseline",
                {"params": p, "table_bytes": fixed_table_bytes},
                f"fig24/{n_buckets}buckets/baseline",
            )
        )
        specs.append(
            RunSpec(
                _HT + "run_leviathan",
                {"params": p, "table_bytes": fixed_table_bytes},
                f"fig24/{n_buckets}buckets/leviathan",
            )
        )
    results = pool.run_results(specs)

    speedups = {}
    for i, n_buckets in enumerate(bucket_counts):
        base, lev = results[2 * i], results[2 * i + 1]
        speedup = lev.speedup_over(base)
        speedups[n_buckets] = speedup
        exp.add_row(
            n_buckets=n_buckets,
            table_kb=hashtable._padded_table_bytes(
                {**hashtable.DEFAULT_PARAMS, **point_params[i]}
            )
            / 1024,
            speedup=speedup,
            lev_dram=lev.stat("dram.accesses"),
        )

    in_cache = [speedups[b] for b in bucket_counts if b <= 64]
    beyond = speedups[max(bucket_counts)]
    exp.expect("speedup while table fits LLC", "greater", min(in_cache), 1.1)
    exp.expect(
        "speedup declines once the table exceeds the LLC",
        "less",
        beyond,
        min(in_cache),
    )
    return exp


def run_fig25(tile_counts=(4, 8, 16, 32, 64), params=None, pool=None):
    """System-size sensitivity with hash-table lookups (Fig. 25).

    Paper: Leviathan performs even better with larger systems because
    the NoC savings grow with mesh diameter.
    """
    pool = pool or default_pool()
    exp = Experiment(
        name="System-size sensitivity (hash table)",
        paper_reference="Fig. 25",
        notes="Paper: speedup grows with tile count.",
    )
    specs = []
    for n_tiles in tile_counts:
        sweep_params = dict(params or _HT_SWEEP_PARAMS)
        sweep_params.setdefault("n_buckets", 64)
        sweep_params.setdefault("object_size", 64)
        sweep_params["n_threads"] = n_tiles
        specs.append(
            RunSpec(
                _HT + "run_baseline",
                {"params": sweep_params, "n_tiles": n_tiles},
                f"fig25/{n_tiles}tiles/baseline",
            )
        )
        specs.append(
            RunSpec(
                _HT + "run_leviathan",
                {"params": sweep_params, "n_tiles": n_tiles},
                f"fig25/{n_tiles}tiles/leviathan",
            )
        )
    results = pool.run_results(specs)
    speedups = {}
    for i, n_tiles in enumerate(tile_counts):
        base, lev = results[2 * i], results[2 * i + 1]
        speedups[n_tiles] = lev.speedup_over(base)
        exp.add_row(
            n_tiles=n_tiles,
            speedup=speedups[n_tiles],
            base_flit_hops=base.stat("noc.flit_hops"),
            lev_flit_hops=lev.stat("noc.flit_hops"),
        )
    exp.expect(
        "speedup grows from the smallest to the largest system",
        "greater",
        speedups[max(tile_counts)] - speedups[min(tile_counts)],
        0.0,
    )
    exp.expect(
        "Leviathan always reduces NoC traffic",
        "less",
        max(
            row["lev_flit_hops"] / row["base_flit_hops"] for row in exp.rows
        ),
        1.0,
    )
    return exp

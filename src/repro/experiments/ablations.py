"""Ablations of design choices DESIGN.md calls out (beyond the paper's
headline figures, but each grounded in a specific claim in the text).

- Memory-controller FIFO cache (Sec. VI-A3: "can reduce DRAM accesses
  by up to ~3x" for compacted objects).
- DYNAMIC-task migration (Sec. VI-B1: 1/32 of remote tasks run locally
  to pull hot actors up the hierarchy).
- DRAM compaction (Sec. VIII-B: padding 24 B nodes to 32 B would cost
  25% memory fragmentation without it).

Each ablation point is a module-level function so it can be named in a
:class:`~repro.experiments.pool.RunSpec` (``repro.experiments.ablations:
mc_cache_point``) and executed in a pool worker process; the ``run_*``
entry points only enumerate specs and shape the pooled results into
:class:`~repro.experiments.runner.Experiment` rows.
"""

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.experiments.pool import RunSpec, default_pool, run_study
from repro.experiments.runner import Experiment
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine
from repro.workloads.common import finish_run

_SELF = "repro.experiments.ablations:"
_HT = "repro.workloads.hashtable:"
_COMPONENTS = "repro.workloads.components:"


def mc_cache_point(fifo_lines):
    """One point of the MC FIFO-cache sweep: a compacted sequential scan.

    A 24 B-object array is padded to 32 B in cache space but packed in
    DRAM, so consecutive cache lines share DRAM lines; the FIFO cache
    absorbs the repeats.
    """
    cfg = small_config(**{"memory.fifo_lines": fifo_lines})
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    alloc = runtime.allocator(24, capacity=4096)
    addrs = [alloc.allocate() for _ in range(2048)]

    def scan(addrs=addrs):
        for addr in addrs:
            yield Load(addr, 24)
            yield Compute(2)

    machine.spawn(scan(), tile=0, name="scan")
    machine.run()
    return finish_run(machine, f"fifo-{fifo_lines}")


def run_mc_cache(fifo_sizes=(0, 8, 32, 128), pool=None):
    """Sweep the MC FIFO cache on a compacted sequential scan."""
    pool = pool or default_pool()
    exp = Experiment(
        name="Memory-controller FIFO cache",
        paper_reference="Sec. VI-A3",
        notes="Paper: the 32-line FIFO cache cuts DRAM accesses by up to ~3x.",
    )
    specs = [
        RunSpec(_SELF + "mc_cache_point", {"fifo_lines": fifo}, f"mc_cache/fifo{fifo}")
        for fifo in fifo_sizes
    ]
    dram = {}
    for fifo, result in zip(fifo_sizes, pool.run_results(specs)):
        dram[fifo] = result.stat("dram.accesses")
        exp.add_row(
            fifo_lines=fifo,
            dram_accesses=dram[fifo],
            mc_hits=result.stat("mc_cache.hits"),
        )
    exp.expect(
        "the 32-line FIFO cuts DRAM accesses vs. no FIFO",
        "greater",
        dram[0] / dram[32],
        1.3,
    )
    exp.expect(
        "bigger FIFOs do not help sequential scans much more",
        "less",
        dram[32] / max(1, dram[max(fifo_sizes)]),
        1.2,
    )
    return exp


class _HotActor(Actor):
    SIZE = 8

    @action
    def bump(self, env, amount):
        yield Load(self.addr, 8)
        yield Compute(1)

    @action
    def probe(self, env):
        yield Load(self.addr, 8)
        yield Compute(1)
        return 1


def migration_point(period):
    """One point of the migration ablation: a synchronous hot-actor loop.

    One core synchronously invokes a DYNAMIC task on one hot actor
    homed at a remote bank. With migration, the actor's line is pulled
    into the invoker's tile and later tasks execute locally, cutting
    the per-task round trip. ``period=0`` disables migration.
    """
    from repro.core.future import WaitFuture

    cfg = small_config()
    if period == 0:
        # Effectively disable migration.
        cfg.leviathan.migration_period = 1 << 30
    else:
        cfg.leviathan.migration_period = period
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(_HotActor, capacity=16)
    actor = alloc.allocate()
    bank = machine.hierarchy.bank_of(machine.hierarchy.line_of(actor.addr))
    invoker_tile = (bank + 1) % machine.config.n_tiles

    def pounder(actor=actor):
        for _ in range(512):
            future = yield Invoke(
                actor, "probe", location=Location.DYNAMIC, with_future=True
            )
            yield WaitFuture(future)

    machine.spawn(pounder(), tile=invoker_tile, name="pounder")
    machine.run()
    return finish_run(machine, f"migration-{period}")


def run_migration(periods=(0, 32), pool=None):
    """DYNAMIC-task migration: hot actors migrate toward the invoker."""
    pool = pool or default_pool()
    exp = Experiment(
        name="DYNAMIC-task migration",
        paper_reference="Sec. VI-B1",
        notes="Paper: 1/32 of remote DYNAMIC tasks execute locally to pull data up.",
    )
    specs = [
        RunSpec(
            _SELF + "migration_point", {"period": period}, f"migration/period{period}"
        )
        for period in periods
    ]
    local_counts = {}
    cycles = {}
    for period, result in zip(periods, pool.run_results(specs)):
        label = "off" if period == 0 else str(period)
        local_counts[period] = result.stat("invoke.inline_at_core") + result.stat(
            "invoke.local_engine"
        )
        cycles[period] = result.cycles
        exp.add_row(
            migration_period=label,
            local_executions=local_counts[period],
            migrations=result.stat("invoke.migrations"),
            cycles=cycles[period],
        )
    exp.expect(
        "migration produces local executions of a hot actor",
        "greater",
        local_counts[32] - local_counts[0],
        100,
    )
    exp.expect(
        "migration speeds up the synchronous hot-actor pattern",
        "less",
        cycles[32] / cycles[0],
        1.0,
    )
    return exp


def run_near_memory(bucket_multiplier=16, pool=None):
    """Near-memory engines on a beyond-LLC hash table (Sec. IX).

    Fig. 24 shows Leviathan's speedup eroding once the table outgrows
    the LLC; the paper points to near-memory engines as the fix. With
    the extension on, DYNAMIC lookup hops on uncached nodes execute at
    the node's memory controller instead of a distant LLC bank.
    """
    import repro.workloads.hashtable as ht_module

    pool = pool or default_pool()
    exp = Experiment(
        name="Near-memory engines (extension)",
        paper_reference="Sec. IX (future work)",
        notes=(
            "Paper: 'future work on incorporating near-memory engines can "
            "further improve performance for non-cache-fitting workloads'."
        ),
    )
    params = dict(
        n_buckets=64 * bucket_multiplier,
        nodes_per_bucket=32,
        n_threads=16,
        lookups_per_thread=32,
        object_size=64,
    )
    # Fix the LLC at the 64-bucket operating point so the table spills.
    fixed_bytes = ht_module._padded_table_bytes(
        {**ht_module.DEFAULT_PARAMS, "n_buckets": 64, "object_size": 64}
    )
    specs = []
    for near_memory in (False, True):
        kwargs = {
            "params": params,
            "table_bytes": fixed_bytes,
            "config_overrides": {"leviathan.near_memory_engines": near_memory},
        }
        tag = "on" if near_memory else "off"
        specs.append(
            RunSpec(_HT + "run_baseline", kwargs, f"near_memory/{tag}/baseline")
        )
        specs.append(
            RunSpec(_HT + "run_leviathan", kwargs, f"near_memory/{tag}/leviathan")
        )
    results = pool.run_results(specs)

    speedups = {}
    for i, near_memory in enumerate((False, True)):
        base, lev = results[2 * i], results[2 * i + 1]
        speedups[near_memory] = lev.speedup_over(base)
        exp.add_row(
            near_memory_engines="on" if near_memory else "off",
            speedup=speedups[near_memory],
            near_memory_placements=lev.stat("invoke.near_memory"),
            dram_accesses=lev.stat("dram.accesses"),
        )
    exp.expect(
        "near-memory engines help a spilled table",
        "greater",
        speedups[True] - speedups[False],
        0.0,
    )
    exp.expect(
        "near-memory placement actually used",
        "greater",
        exp.rows[1]["near_memory_placements"],
        0,
    )
    return exp


def run_components(pool=None):
    """PHI generality: commutative ``min`` instead of ``add`` (Sec. IV).

    Connected components by synchronous min-label propagation, on the
    same morph + offload machinery as Fig. 5. Not a paper figure; it
    substantiates the paper's claim that PHI-style support must
    generalize across "the diversity of graph applications [13]".
    Note the baseline pays a measured sequential apply sweep per round,
    while Leviathan applies candidates at eviction time (PHI's actual
    mechanism), so the factor here is larger than Fig. 5's.
    """
    pool = pool or default_pool()
    specs = [
        RunSpec(_COMPONENTS + "run_baseline", {}, "components/baseline"),
        RunSpec(_COMPONENTS + "run_leviathan", {}, "components/leviathan"),
    ]
    study = run_study(
        pool,
        "Connected components (PHI generality)",
        "baseline",
        specs,
    )
    exp = Experiment(
        name="Connected components (PHI generality)",
        paper_reference="Sec. IV (generality claim)",
        notes="Same machinery as Fig. 5 with min-combining; labels oracle-checked.",
    )
    speedups = study.speedups()
    for name, result in study.results.items():
        exp.add_row(
            variant=name,
            speedup=speedups[name],
            energy_savings_pct=study.energy_savings()[name] * 100,
        )
    exp.expect("Leviathan wins with min-combining", "greater", speedups["leviathan"], 1.5)
    return exp


def compaction_point(compaction):
    """One point of the compaction ablation: allocate one 24 B object."""
    cfg = small_config()
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    alloc = runtime.allocator(24, capacity=64, compaction=compaction)
    alloc.allocate()
    return {
        "compaction": compaction,
        "dram_bytes_per_object": alloc.dram_bytes_per_object(),
        "fragmentation": alloc.fragmentation(),
    }


def run_compaction(pool=None):
    """DRAM fragmentation with and without compaction (Sec. VIII-B)."""
    pool = pool or default_pool()
    exp = Experiment(
        name="DRAM object compaction",
        paper_reference="Sec. V-A3 / VIII-B",
        notes="Paper: padding 24 B nodes to 32 B would waste 25% of DRAM.",
    )
    specs = [
        RunSpec(
            _SELF + "compaction_point",
            {"compaction": compaction},
            f"compaction/{'on' if compaction else 'off'}",
        )
        for compaction in (True, False)
    ]
    fragmentations = {}
    for point in pool.run_results(specs):
        fragmentations[point["compaction"]] = point["fragmentation"]
        exp.add_row(
            compaction="on" if point["compaction"] else "off",
            dram_bytes_per_object=point["dram_bytes_per_object"],
            fragmentation_pct=point["fragmentation"] * 100,
        )
    exp.expect("no fragmentation with compaction", "less", fragmentations[True], 1e-9)
    exp.expect(
        "25% fragmentation without compaction",
        "between",
        fragmentations[False],
        0.24,
        0.26,
    )
    return exp

"""The NDC taxonomy (Sec. II, Tables I-III).

Structured data for the paper's taxonomy of near-data computing: the
four paradigms, their characteristics, representative prior work
(Table I), the actions associated with each paradigm (Table II), and
the per-paradigm microarchitecture support (Table III). The experiment
harness renders these as the paper's tables; the runtime uses
:data:`PARADIGMS` for validation and documentation.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Paradigm:
    """One NDC paradigm and its taxonomy attributes (Table I)."""

    name: str
    small_tasks: bool
    talks_to_cores: bool
    prior_work: tuple
    #: Actions associated with the paradigm (Table II).
    actions: str
    #: Per-paradigm microarchitecture support (Table III).
    core_support: str
    cache_support: str
    engine_support: str
    #: The rough analogy from Sec. II-C.
    analogy: str


TASK_OFFLOAD = Paradigm(
    name="Task offload",
    small_tasks=True,
    talks_to_cores=True,
    prior_work=(
        "Remote memory operations (RMOs)",
        "Minnow",
        "hash tables",
        "memoization",
        "BSSync",
        "pointer chasing",
        "data remapping",
        "Compute Caches",
        "Livia",
        "Dist-DA",
    ),
    actions="Arbitrary actor-specific function",
    core_support="invoke instr & buf",
    cache_support="N/A",
    engine_support="DYNAMIC scheduling",
    analogy="calling a function",
)

LONG_LIVED = Paradigm(
    name="Long-lived workloads",
    small_tasks=False,
    talks_to_cores=False,
    prior_work=("PageForge", "SerDes", "garbage collection", "COREx"),
    actions="Arbitrary actor-specific function",
    core_support="invoke instr & buf",
    cache_support="N/A",
    engine_support="DYNAMIC scheduling",
    analogy="spawning a thread",
)

DATA_TRIGGERED = Paradigm(
    name="Data-triggered actions",
    small_tasks=True,
    talks_to_cores=False,
    prior_work=(
        "Prefetching",
        "compression",
        "HTM",
        "coherence and synchronization",
        "Impulse",
        "Relational Memory",
        "Tvarak",
        "PHI",
        "tako",
    ),
    actions="Actor constructor & destructor",
    core_support="flush instr, TLB bits",
    cache_support="tag bits",
    engine_support="actor buffer, vtable map",
    analogy="registering an interrupt handler",
)

STREAMING = Paradigm(
    name="Streaming",
    small_tasks=False,
    talks_to_cores=True,
    prior_work=(
        "Stream Dataflow",
        "Stream ISA",
        "Stream Floating",
        "Near-Stream Computing",
        "Task Stream",
        "Infinity Stream",
        "HATS",
        "SpZip",
        "Cohort",
    ),
    actions="Actor-specific producer function",
    core_support="pop instr",
    cache_support="N/A",
    engine_support="push instr, stream metadata",
    analogy="opening a network socket",
)

PARADIGMS = (TASK_OFFLOAD, LONG_LIVED, DATA_TRIGGERED, STREAMING)


def table1():
    """Table I rows: (paradigm, small tasks?, talks to cores?, prior work)."""
    return [
        (p.name, p.small_tasks, p.talks_to_cores, ", ".join(p.prior_work))
        for p in PARADIGMS
    ]


def table2():
    """Table II rows: (paradigm, actions)."""
    return [(p.name, p.actions) for p in PARADIGMS]


def table3():
    """Table III rows: (paradigm, core, cache, engine support).

    Long-lived workloads share the task-offload row in the paper's
    Table III (the invoke interface covers both, Sec. V-B1).
    """
    return [
        (p.name, p.core_support, p.cache_support, p.engine_support)
        for p in PARADIGMS
        if p is not LONG_LIVED
    ]


def classify(small_tasks, talks_to_cores):
    """The paradigm with the given taxonomy coordinates (Fig. 3)."""
    for p in PARADIGMS:
        if p.small_tasks == small_tasks and p.talks_to_cores == talks_to_cores:
            return p
    raise LookupError("no paradigm matches")  # pragma: no cover

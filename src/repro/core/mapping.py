"""LLC object mapping and DRAM object compaction (Sec. VI-A3, Fig. 14).

Two mechanisms, both keyed on the allocator's pool records:

1. **LLC object mapping** -- objects padded to ``2^k`` cache lines have
   the ``k`` low line-index bits ignored by the LLC bank-index function,
   so every line of an object maps to the same bank. (Page-table/L2-tag
   bits carry ``k`` in hardware; here the registry answers directly.)

2. **DRAM object compaction** -- objects are *padded* in cache-address
   space but *packed* in DRAM-address space. A translation entry per
   pool (cache base/bound, DRAM base, object size, padded size) converts
   cache lines to the DRAM lines that actually hold their bytes. The
   translation is pure offset arithmetic, exactly as in Fig. 14.
"""

import bisect
from dataclasses import dataclass


@dataclass(frozen=True)
class TranslationEntry:
    """One pool's cache<->DRAM mapping record (25 B of state in hardware)."""

    cache_base: int
    cache_bound: int
    dram_base: int
    object_size: int
    padded_size: int
    line_size: int = 64

    def contains(self, addr):
        return self.cache_base <= addr < self.cache_bound

    def to_dram(self, addr):
        """DRAM byte address backing cache byte address ``addr``.

        Padding bytes carry no data; they are mapped (harmlessly) onto
        the last byte of their object so ranges stay monotonic.
        """
        offset = addr - self.cache_base
        index, within = divmod(offset, self.padded_size)
        within = min(within, self.object_size - 1)
        return self.dram_base + index * self.object_size + within

    @property
    def bank_shift(self):
        """Low line-index bits ignored by the bank-index function."""
        lines = max(1, self.padded_size // self.line_size)
        return max(0, lines.bit_length() - 1)


class MappingRegistry:
    """All live translation entries, searchable by cache address.

    Implements the two hierarchy hooks: ``bank_shift(line)`` and
    ``translate(line)``. Entries are kept sorted by base address for
    bisect lookup (pools never overlap).
    """

    def __init__(self, line_size=64):
        self.line_size = line_size
        self._bases = []
        self._entries = []

    def register(self, entry):
        if entry.cache_bound <= entry.cache_base:
            raise ValueError("empty translation entry")
        idx = bisect.bisect_left(self._bases, entry.cache_base)
        prev_overlap = idx > 0 and self._entries[idx - 1].cache_bound > entry.cache_base
        next_overlap = (
            idx < len(self._entries) and entry.cache_bound > self._bases[idx]
        )
        if prev_overlap or next_overlap:
            raise ValueError(f"translation entry overlaps an existing pool: {entry}")
        self._bases.insert(idx, entry.cache_base)
        self._entries.insert(idx, entry)
        return entry

    def unregister(self, entry):
        idx = bisect.bisect_left(self._bases, entry.cache_base)
        if idx < len(self._entries) and self._entries[idx] is entry:
            del self._bases[idx]
            del self._entries[idx]
            return
        raise KeyError(f"entry not registered: {entry}")

    def find(self, addr):
        """The entry covering byte address ``addr``, or ``None``."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0 and self._entries[idx].contains(addr):
            return self._entries[idx]
        return None

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    # hierarchy hooks
    # ------------------------------------------------------------------
    def bank_shift(self, line):
        entry = self.find(line * self.line_size)
        return entry.bank_shift if entry else 0

    def translate(self, line):
        """DRAM line numbers backing cache line ``line``.

        Without a mapping entry, identity. With one, the (padded) cache
        line's bytes map onto a compact, possibly narrower DRAM byte
        range; because the mapping is monotonic, the endpoints bound it.
        """
        lo = line * self.line_size
        entry = self.find(lo)
        if entry is None:
            return (line,)
        hi = min(lo + self.line_size - 1, entry.cache_bound - 1)
        dram_lo = entry.to_dram(lo) // self.line_size
        dram_hi = entry.to_dram(hi) // self.line_size
        return tuple(range(dram_lo, dram_hi + 1))

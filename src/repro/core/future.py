"""Futures: how near-data actions communicate results (Sec. V-A2).

A :class:`Future` is filled exactly once by a near-data action and
waited on by (usually) one core thread. The fill uses the paper's
``store-update`` mechanism (Sec. VI-A2): the engine pushes the value
over the NoC directly into the waiter's core, so no extra coherence
round-trip is needed when the waiter resumes.
"""

from dataclasses import dataclass, field

from repro.sim.events import FutureFilled
from repro.sim.ops import Condition, Op, Park

#: Payload bytes of a store-update message (future pointer + value).
STORE_UPDATE_BYTES = 16


class Future:
    """A single-assignment communication cell.

    Programs wait by yielding :class:`WaitFuture`; near-data actions
    fill it by returning a value from an invoked action (the runtime
    translates ``return`` into ``send``, as the paper's compiler does)
    or by calling :meth:`fill` directly.
    """

    __slots__ = ("machine", "home_tile", "value", "filled", "fill_time", "condition", "cid")

    def __init__(self, machine, home_tile):
        self.machine = machine
        #: Tile of the thread that will wait (the invoker).
        self.home_tile = home_tile
        self.value = None
        self.filled = False
        self.fill_time = None
        self.condition = Condition("future")
        #: Correlation ID of the invoke that owns this future's span
        #: (set by the first Invoke the future is attached to while the
        #: event bus is active; continuation re-invokes leave it alone).
        self.cid = None

    def fill(self, value, from_tile):
        """Fill the future from an engine at ``from_tile``.

        Sends the store-update message and wakes every waiter at the
        message's arrival time.
        """
        if self.filled:
            raise RuntimeError("future filled twice")
        machine = self.machine
        latency = machine.hierarchy.noc.send(
            from_tile, self.home_tile, STORE_UPDATE_BYTES
        )
        machine.stats.add("future.fills")
        self.value = value
        self.filled = True
        self.fill_time = machine.now + latency
        if machine.events.active:
            machine.events.emit(
                FutureFilled(self.home_tile, from_tile, self.cid, self.fill_time)
            )
        machine.wake_all(self.condition, value=value, at_time=self.fill_time)

    def __repr__(self):
        state = f"filled={self.value!r}" if self.filled else "pending"
        return f"Future(home=tile{self.home_tile}, {state})"


@dataclass
class WaitFuture(Op):
    """Block until ``future`` is filled; the generator receives the value.

    Example::

        future = yield Invoke(node, "lookup", args=(key,), with_future=True)
        value = yield WaitFuture(future)
    """

    future: Future
    result: object = field(default=None, compare=False)

    def execute(self, machine, ctx):
        if self.future.filled:
            self.result = self.future.value
            # The store-update already deposited the value in-core.
            wait = max(0.0, self.future.fill_time - ctx.time)
            return wait + 1
        raise Park(self.future.condition)

"""Task offload and long-lived workloads (Sec. V-B1, VI-B1).

``invoke`` is the single interface for both paradigms: a core (or
another action) explicitly triggers an action near an actor. The
important microarchitecture reproduced here:

- **Placement.** LOCAL runs on the invoker's tile engine; REMOTE on the
  engine at the actor's LLC bank; DYNAMIC probes the hierarchy -- if the
  actor is in the invoker's L1 the action runs right at the core, if in
  the local L2 on the local engine, otherwise at the LLC bank (and, with
  the EXCLUSIVE hint, at whichever remote L2 owns the line).
- **Migration.** One in ``migration_period`` DYNAMIC tasks that would
  run remotely runs locally instead, pulling hot actors up the
  hierarchy.
- **Backpressure.** Invokes without futures occupy an entry in the
  per-core invoke buffer until an engine accepts the task; engines with
  no free task context NACK, spilling the task back (extra NoC traffic)
  until a context frees. Cores stall when the invoke buffer is full --
  the queueing effect Fig. 22 sweeps.
"""

import enum
from dataclasses import dataclass, field

from repro.core.engine import NACK_BYTES
from repro.core.future import Future
from repro.sim.events import (
    DegradedToFallback,
    EngineTaskDone,
    EngineTaskStart,
    InvokeDispatched,
    InvokeRetried,
    InvokeStalled,
)
from repro.sim.ops import Condition, Op, Park, Sleep

#: Base packet bytes for an invoke: actor pointer + function pointer + flags.
INVOKE_HEADER_BYTES = 17


class InvokeTimeout(RuntimeError):
    """A NACKed invoke exhausted its bounded retries.

    Only raised in bounded-retry mode (``core.invoke_max_retries`` set):
    the engine NACKed the invoke on every re-send, so the task cannot be
    placed and the simulation surfaces a typed error instead of queueing
    forever.
    """


class Location(enum.Enum):
    """Where an offloaded task executes (Sec. V-B1)."""

    LOCAL = "local"
    REMOTE = "remote"
    DYNAMIC = "dynamic"


class InvokeBuffer:
    """Per-core buffer of in-flight (un-ACKed) invokes.

    Entries drain at their *simulated* ACK time (the engine's
    acceptance), not when the acceptance is computed -- a core issuing
    faster than the NoC/engines can ACK fills the buffer and stalls,
    which is the queueing effect Fig. 22 sweeps.
    """

    def __init__(self, machine, tile, entries):
        self.machine = machine
        self.tile = tile
        self.entries = entries
        #: One ACK timestamp per in-flight invoke (None until accepted).
        self._acks = []
        self.slot_freed = Condition(f"invoke_buffer{tile}")

    def _prune(self, now):
        self._acks = [s for s in self._acks if s[0] is None or s[0] > now]

    def full(self, now):
        self._prune(now)
        return len(self._acks) >= self.entries

    @property
    def in_flight(self):
        return len(self._acks)

    def acquire(self, now):
        """Reserve a slot; returns a handle for :meth:`release`."""
        self._prune(now)
        slot = [None]
        self._acks.append(slot)
        self.machine.stats.add("invoke.buffered")
        return slot

    def earliest_ack(self, now):
        """The soonest known ACK time after ``now`` (None if all pending)."""
        times = [s[0] for s in self._acks if s[0] is not None and s[0] > now]
        return min(times) if times else None

    def release(self, slot, at_time):
        """Record the slot's ACK time and wake any stalled invokes."""
        slot[0] = at_time
        self.machine.wake_all(self.slot_freed, at_time=at_time)


@dataclass
class Invoke(Op):
    """Offload ``action`` to execute near ``actor``.

    Parameters mirror Fig. 9: ``location`` (default DYNAMIC) and the
    EXCLUSIVE write hint. ``with_future=True`` allocates a Future that
    is filled with the action's return value (a non-None return fills
    the attached future; chained continuation-passing invokes pass the
    caller's ``future`` along and return None themselves).

    ``tile`` pins execution to a specific tile (used by long-lived
    workloads that request a location low in the hierarchy).
    """

    actor: object
    action: str
    args: tuple = ()
    location: Location = Location.DYNAMIC
    exclusive: bool = False
    with_future: bool = False
    future: Future = None
    tile: int = None
    args_bytes: int = 8
    result: object = field(default=None, compare=False)
    #: Correlation ID for span tracing. Allocated on first execution
    #: while the event bus is active and reused across park/retry
    #: re-executions, so one invoke is one span no matter how often a
    #: full buffer bounces it.
    cid: int = field(default=None, compare=False)

    def execute(self, machine, ctx):
        runtime = machine.leviathan
        if runtime is None:
            raise RuntimeError("invoke requires a Leviathan runtime on the machine")
        machine.stats.add("invoke.issued")

        future = self.future
        if self.with_future:
            if future is not None:
                raise ValueError("with_future=True conflicts with an explicit future")
            future = Future(machine, ctx.tile)
        self.result = future

        target, inline_at_core, near_memory = self._place(machine, runtime, ctx)
        cid = self.cid
        if machine.events.active:
            if cid is None:
                cid = self.cid = machine.next_cid()
            # Claim the future for this span: FutureFilled events carry
            # the cid of the invoke the future was first attached to, so
            # continuation-passing re-invokes do not own the fill.
            owns_future = False
            if future is not None:
                if future.cid is None:
                    future.cid = cid
                owns_future = future.cid == cid
            machine.events.emit(
                InvokeDispatched(
                    ctx.tile,
                    target,
                    self.action,
                    self.location.value,
                    inline_at_core,
                    near_memory,
                    cid=cid,
                    time=ctx.time,
                    owns_future=owns_future,
                )
            )

        # The action generator; actions receive the runtime as ``env``.
        program = self.actor.action_fn(self.action)(runtime, *self.args)

        if inline_at_core:
            # DYNAMIC with the actor in the invoker's L1: run right here.
            machine.stats.add("invoke.inline_at_core")
            name = f"{self.action}@core"
            if machine.events.active:
                machine.events.emit(EngineTaskStart(ctx.tile, name, cid, ctx.time))
            latency, value = machine.run_inline(
                program, ctx.tile, is_engine=ctx.is_engine, name=name
            )
            if future is not None and value is not None:
                future.fill(value, from_tile=ctx.tile)
            if machine.events.active:
                machine.events.emit(
                    EngineTaskDone(ctx.tile, name, cid, ctx.time + latency)
                )
            return latency

        if runtime.engines[target].failed:
            # Sec. VI-C degradation: DYNAMIC placement reroutes to the
            # nearest healthy engine; pinned/LOCAL/REMOTE invokes are
            # tied to the dead tile and fall back to on-core execution.
            machine.stats.add("invoke.degraded")
            fallback = None
            if self.tile is None and self.location is Location.DYNAMIC:
                fallback = runtime.healthy_engine_near(target)
            if fallback is None:
                if machine.events.active:
                    machine.events.emit(
                        DegradedToFallback(
                            "on-core", target, ctx.tile, self.action, cid, ctx.time
                        )
                    )
                return self._run_on_core(machine, ctx, program, future, cid)
            if machine.events.active:
                machine.events.emit(
                    DegradedToFallback(
                        "reroute", target, fallback.tile, self.action, cid, ctx.time
                    )
                )
            machine.stats.add("invoke.rerouted")
            target = fallback.tile

        buffer = None
        slot = None
        stall = 0.0
        if future is None and not ctx.is_engine and not ctx.inline:
            buffer = runtime.invoke_buffers[ctx.tile]
            if buffer.full(ctx.time):
                machine.stats.add("invoke.stalls")
                ack = buffer.earliest_ack(ctx.time)
                if ack is None:
                    # Every slot is waiting on a NACKed engine: the
                    # release (and its wake) arrives later in simulated
                    # time, so park until it does.
                    if machine.events.active:
                        machine.events.emit(
                            InvokeStalled(ctx.tile, self.action, cid, ctx.time, None)
                        )
                    raise Park(buffer.slot_freed, retry=True)
                # The next ACK time is known: stall the core until then.
                stall = ack - ctx.time
                if machine.events.active:
                    machine.events.emit(
                        InvokeStalled(ctx.tile, self.action, cid, ctx.time, stall)
                    )
            slot = buffer.acquire(ctx.time + stall)

        packet_bytes = INVOKE_HEADER_BYTES + self.args_bytes
        transit = machine.hierarchy.noc.send(ctx.tile, target, packet_bytes)
        arrival = ctx.time + stall + 1 + transit

        engine = runtime.engines[target]

        def on_accept(at_time, _buffer=buffer, _slot=slot):
            if _buffer is not None:
                _buffer.release(_slot, at_time)

        def on_complete(value, _future=future, _engine=engine):
            if _future is not None and value is not None:
                _future.fill(value, from_tile=_engine.tile)

        max_retries = machine.config.core.invoke_max_retries
        if max_retries is None:
            # The paper's unbounded spill-and-retry: NACKed tasks wait in
            # the engine's queue until a context frees.
            accepted = engine.submit(
                program,
                arrival,
                name=f"{self.action}@tile{target}",
                on_accept=on_accept,
                on_complete=on_complete,
                near_memory=near_memory,
                cid=cid,
            )
            if not accepted:
                # Spill traffic: the NACK back to the core and the re-send.
                machine.stats.add("invoke.retries")
                machine.stats.add("invoke.spill_bytes", NACK_BYTES)
                machine.hierarchy.noc.send(target, ctx.tile, NACK_BYTES)
                machine.hierarchy.noc.send(ctx.tile, target, packet_bytes)
            return stall + 1

        # Bounded-retry mode: a NACKed task stays with the invoker, which
        # re-sends after an exponential backoff and gives up with a typed
        # InvokeTimeout after max_retries failed attempts.
        task = engine.make_task(
            program,
            name=f"{self.action}@tile{target}",
            on_accept=on_accept,
            on_complete=on_complete,
            near_memory=near_memory,
            cid=cid,
        )
        if not engine.offer(task, arrival):
            engine.nack(task, arrival)
            machine.stats.add("invoke.spill_bytes", NACK_BYTES)
            machine.hierarchy.noc.send(target, ctx.tile, NACK_BYTES)
            machine.spawn(
                self._retry_shuttle(machine, runtime, task, target, ctx.tile, packet_bytes),
                tile=ctx.tile,
                name=f"retry:{self.action}",
                at_time=arrival,
            )
        return stall + 1

    def _retry_shuttle(self, machine, runtime, task, target, src, packet_bytes):
        """Bounded NACK retry loop (runs as a core-side context).

        Each attempt waits the backoff, re-sends the invoke packet, and
        offers the task again; the backoff grows by
        ``invoke_retry_backoff`` per failed attempt. A target that fails
        mid-retry degrades like the initial dispatch (reroute for
        DYNAMIC, on-core otherwise).
        """
        cfg = machine.config.core
        noc = machine.hierarchy.noc
        backoff = float(cfg.invoke_retry_delay)
        for attempt in range(1, cfg.invoke_max_retries + 1):
            yield Sleep(backoff)
            engine = runtime.engines[target]
            if engine.failed:
                machine.stats.add("invoke.degraded")
                fallback = None
                if self.tile is None and self.location is Location.DYNAMIC:
                    fallback = runtime.healthy_engine_near(target)
                if fallback is None:
                    if machine.events.active:
                        machine.events.emit(
                            DegradedToFallback(
                                "on-core", target, src, self.action,
                                task.cid, machine.sim_time(),
                            )
                        )
                    runtime.run_task_on_core(task, src)
                    return
                if machine.events.active:
                    machine.events.emit(
                        DegradedToFallback(
                            "reroute", target, fallback.tile, self.action,
                            task.cid, machine.sim_time(),
                        )
                    )
                machine.stats.add("invoke.rerouted")
                target = fallback.tile
                engine = fallback
            machine.stats.add("invoke.retries")
            resend = noc.send(src, target, packet_bytes)
            if machine.events.active:
                machine.events.emit(
                    InvokeRetried(
                        src, target, self.action, attempt, backoff,
                        task.cid, machine.sim_time(),
                    )
                )
            yield Sleep(1 + resend)
            if engine.offer(task, machine.sim_time()):
                return
            engine.nack(task, machine.sim_time())
            machine.stats.add("invoke.spill_bytes", NACK_BYTES)
            noc.send(target, src, NACK_BYTES)
            backoff *= cfg.invoke_retry_backoff
        raise InvokeTimeout(
            f"invoke {self.action!r} to tile {target} NACKed past "
            f"{cfg.invoke_max_retries} retries (task contexts exhausted); "
            f"last backoff {backoff:.0f} cycles"
        )

    def _run_on_core(self, machine, ctx, program, future, cid):
        """Sec. VI-C on-core fallback for an invoke whose engine failed."""
        machine.stats.add("invoke.on_core_fallbacks")
        name = f"{self.action}@core-fallback"
        if machine.events.active:
            machine.events.emit(EngineTaskStart(ctx.tile, name, cid, ctx.time))
        latency, value = machine.run_inline(
            program, ctx.tile, is_engine=False, name=name
        )
        if future is not None and value is not None:
            future.fill(value, from_tile=ctx.tile)
        if machine.events.active:
            machine.events.emit(EngineTaskDone(ctx.tile, name, cid, ctx.time + latency))
        return latency

    # ------------------------------------------------------------------
    def _place(self, machine, runtime, ctx):
        """Choose the executing tile.

        Returns ``(tile, inline_at_core, near_memory)``.
        """
        hierarchy = machine.hierarchy
        line = hierarchy.line_of(self.actor.addr)

        if self.tile is not None:
            return self.tile, False, False
        if self.location is Location.LOCAL:
            return ctx.tile, False, False
        if self.location is Location.REMOTE:
            return hierarchy.bank_of(line), False, False

        # DYNAMIC: probe down the hierarchy (Sec. VI-B1).
        if hierarchy.l1[ctx.tile].contains(line) or (
            ctx.is_engine and hierarchy.engine_l1[ctx.tile].contains(line)
        ):
            return ctx.tile, True, False
        if hierarchy.l2[ctx.tile].contains(line) or hierarchy.engine_l1[
            ctx.tile
        ].contains(line):
            # Cached on this tile (core L2 or the engine's L1d, e.g.
            # after a migration pulled the actor up): local engine.
            machine.stats.add("invoke.local_engine")
            return ctx.tile, False, False
        target = hierarchy.bank_of(line)
        near_memory = False
        if self.exclusive:
            owner = hierarchy.owner_of(line)
            if owner is not None:
                target = owner
        elif (
            machine.config.leviathan.near_memory_engines
            and not hierarchy.llc_has(line)
        ):
            # Near-memory extension (Sec. IX): the actor is not cached
            # anywhere, so run at the engine beside its memory
            # controller and read DRAM over zero NoC distance.
            dram_line = hierarchy.hooks.translate(line)[0]
            target = hierarchy.mem.controller_tile(dram_line)
            near_memory = True
            machine.stats.add("invoke.near_memory")
        if target != ctx.tile:
            runtime.migration_ticks += 1
            if runtime.migration_ticks % machine.config.leviathan.migration_period == 0:
                machine.stats.add("invoke.migrations")
                return ctx.tile, False, False
            machine.stats.add("invoke.remote")
        return target, False, near_memory

"""Hardware-overhead model (Table IV, Sec. VI-D).

Reproduces the paper's per-LLC-bank storage accounting: Leviathan adds
~32.8 KB of state per 512 KB LLC bank, a 6.4% overhead. The model is
parameterized so the Sec. VI-C note (larger supported objects need
larger buffers and metadata) can be explored.
"""

from dataclasses import dataclass


@dataclass
class AreaModel:
    """Per-LLC-bank storage overhead of Leviathan."""

    llc_bank_kb: int = 512
    line_size: int = 64
    #: Extra LLC tag bits: 1 destructor bit + 2 object-size bits.
    tag_bits_per_line: int = 3
    translation_buffer_entries: int = 8
    translation_entry_bytes: int = 25
    engine_l1d_kb: int = 8
    engine_tlb_kb: int = 2
    engine_rtlb_kb: int = 2
    data_triggered_objects: int = 16
    max_object_bytes: int = 256
    #: Dataflow fabric state, from tākō [66].
    dataflow_fabric_kb: float = 13.6

    @property
    def llc_lines(self):
        return (self.llc_bank_kb * 1024) // self.line_size

    def tag_overhead_bytes(self):
        return (self.llc_lines * self.tag_bits_per_line) // 8

    def translation_buffer_bytes(self):
        return self.translation_buffer_entries * self.translation_entry_bytes

    def engine_caches_bytes(self):
        return (self.engine_l1d_kb + self.engine_tlb_kb + self.engine_rtlb_kb) * 1024

    def data_triggered_buffer_bytes(self):
        return self.data_triggered_objects * self.max_object_bytes

    def dataflow_fabric_bytes(self):
        return int(self.dataflow_fabric_kb * 1024)

    def total_bytes(self):
        return (
            self.tag_overhead_bytes()
            + self.translation_buffer_bytes()
            + self.engine_caches_bytes()
            + self.data_triggered_buffer_bytes()
            + self.dataflow_fabric_bytes()
        )

    def overhead_fraction(self):
        """Overhead vs. the LLC bank's data array (the paper's ~6.4%)."""
        return self.total_bytes() / (self.llc_bank_kb * 1024)

    def breakdown(self):
        """Table IV, as ``{row_label: bytes}``."""
        return {
            "LLC tags": self.tag_overhead_bytes(),
            "LLC translation buffer": self.translation_buffer_bytes(),
            "Engine L1d, TLB, rTLB": self.engine_caches_bytes(),
            "Data-triggered buffer": self.data_triggered_buffer_bytes(),
            "Dataflow fabric": self.dataflow_fabric_bytes(),
        }

    def report(self):
        lines = []
        for label, nbytes in self.breakdown().items():
            lines.append(f"{label:28s} {nbytes / 1024:8.1f} KB")
        lines.append(
            f"{'Total per LLC bank':28s} {self.total_bytes() / 1024:8.1f} KB "
            f"/ {self.llc_bank_kb} KB = {self.overhead_fraction() * 100:.1f}%"
        )
        return "\n".join(lines)

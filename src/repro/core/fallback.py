"""Very-large-object fallbacks (Sec. VI-C).

Leviathan's hardware paths support objects up to a microarchitectural
maximum (four cache lines in the evaluation). Beyond that, the paper
specifies functionally-correct fallbacks that need *no* change to the
programming interface:

- **Task offload**: the allocator resorts to plain ``malloc`` -- objects
  spread across LLC banks and are padded in DRAM (no compaction entry).
- **Data-triggered actions**: constructors/destructors run *on the
  core* at page granularity (page-in constructs every object in the
  page; page-out destructs them).
- **Streams**: producer and consumer become conventional threads with a
  message-passing queue (no engine, no phantom addresses).

These keep programs working unmodified while losing the near-data
benefit, which is the paper's intent.
"""

from repro.core.allocator import padded_size_of
from repro.sim.ops import Compute, Condition, Load, Store, Wait


def exceeds_hardware_limit(object_size, config):
    """True when ``object_size`` is beyond the engine-supported maximum."""
    try:
        padded_size_of(
            object_size, config.line_size, config.leviathan.max_object_lines
        )
    except ValueError:
        return True
    return False


class MallocAllocator:
    """The task-offload fallback: plain malloc, padded in DRAM.

    Objects are line-aligned but make no single-bank guarantee and
    register no translation entry, so DRAM holds the padding too.
    """

    def __init__(self, runtime, object_size):
        self.runtime = runtime
        self.object_size = object_size
        line = runtime.machine.config.line_size
        #: Line-aligned size: no compaction, fragmentation included.
        self.padded_size = ((object_size + line - 1) // line) * line

    def allocate(self):
        return self.runtime.machine.address_space.alloc(
            self.padded_size, align=self.runtime.machine.config.line_size
        )

    def deallocate(self, addr):
        self.runtime.machine.stats.add("allocator.deallocations")

    def dram_bytes_per_object(self):
        return self.padded_size

    def fragmentation(self):
        return 1.0 - self.object_size / self.padded_size


class PagedMorph:
    """The data-triggered fallback: core-run actions at page granularity.

    ``touch(index)`` must be yielded-from before accessing an object;
    first touch of a page runs constructors for every object in the page
    *on the core* (full core instruction cost, no engine involvement).
    ``evict_all`` runs destructors for every constructed page.
    """

    def __init__(self, runtime, n_actors, object_size, construct=None, destruct=None):
        self.runtime = runtime
        machine = runtime.machine
        self.machine = machine
        self.object_size = object_size
        self.n_actors = n_actors
        self.page_size = machine.config.page_size
        self.objects_per_page = max(1, self.page_size // object_size)
        self.base = machine.address_space.alloc(
            n_actors * object_size, align=self.page_size
        )
        self._construct = construct
        self._destruct = destruct
        self._constructed_pages = set()

    def actor_addr(self, index):
        return self.base + index * self.object_size

    def page_of(self, index):
        return index // self.objects_per_page

    def touch(self, index):
        """Generator: fault in the page of ``index`` if needed."""
        page = self.page_of(index)
        if page in self._constructed_pages:
            return
        self._constructed_pages.add(page)
        self.machine.stats.add("fallback.page_constructions")
        first = page * self.objects_per_page
        last = min(first + self.objects_per_page, self.n_actors)
        for obj in range(first, last):
            if self._construct is not None:
                yield from self._construct(obj)

    def evict_all(self):
        """Generator: page out everything, running destructors on the core."""
        for page in sorted(self._constructed_pages):
            self.machine.stats.add("fallback.page_destructions")
            first = page * self.objects_per_page
            last = min(first + self.objects_per_page, self.n_actors)
            for obj in range(first, last):
                if self._destruct is not None:
                    yield from self._destruct(obj)
        self._constructed_pages.clear()


class ThreadPairStream:
    """The streaming fallback: two conventional threads and a queue.

    Both producer and consumer run on cores; entries pass through a
    shared-memory queue with ordinary loads/stores and condition-based
    blocking -- no engine, no phantom space, no prefetch integration.
    """

    END = object()

    def __init__(self, runtime, object_size, buffer_entries, producer_tile, consumer_tile):
        machine = runtime.machine
        self.machine = machine
        self.object_size = object_size
        self.buffer_entries = buffer_entries
        self.producer_tile = producer_tile
        self.consumer_tile = consumer_tile
        line = machine.config.line_size
        slot = ((object_size + line - 1) // line) * line
        self.slot_size = slot
        self.buffer_base = machine.address_space.alloc(buffer_entries * slot, align=line)
        self.head = 0
        self.tail = 0
        self.done = False
        self.space_avail = Condition("fallback_stream.space")
        self.data_avail = Condition("fallback_stream.data")
        self._values = {}

    def slot_addr(self, index):
        return self.buffer_base + (index % self.buffer_entries) * self.slot_size

    def push(self, obj):
        while self.tail - self.head >= self.buffer_entries:
            yield Wait(self.space_avail)
        yield Store(self.slot_addr(self.tail), self.object_size)
        yield Compute(4)
        self._values[self.tail] = obj
        self.tail += 1
        self.machine.wake_all(self.data_avail)

    def close(self):
        self.done = True
        self.machine.wake_all(self.data_avail)

    def pop(self):
        while self.head >= self.tail:
            if self.done:
                return self.END
            yield Wait(self.data_avail)
        yield Load(self.slot_addr(self.head), self.object_size)
        yield Compute(4)
        value = self._values.pop(self.head)
        self.head += 1
        self.machine.wake_all(self.space_avail)
        return value

"""Near-cache engines (Sec. VI-A1).

One engine per tile, co-located with the tile's L2 and LLC bank (the
paper models engines at both; a single engine per tile serves both
roles here, as the timing difference is intra-tile). The engine is a
dataflow fabric executing application actions:

- **compute timing**: single-issue, ``pe_latency`` per instruction
  (0-latency and energy-free in the *ideal* configuration);
- **task contexts**: a finite task-context buffer, split evenly between
  offloaded and data-triggered actions to prevent deadlock;
- **backpressure**: offloads arriving at a full engine are NACKed back
  to the invoking core (counted; the spill traffic is accounted) and
  queue for the next free context.

Engines access memory through their own small coherent L1d (modeled in
the hierarchy as a per-tile ``engine_l1``) and share the tile's L2.
"""

from collections import OrderedDict, deque

from repro.sim.events import EngineFailed, EngineTask, EngineTaskDone, EngineTaskStart
from repro.sim.ops import Condition

#: Payload bytes of a NACK/spill control message.
NACK_BYTES = 8

#: Cycles to refill an rTLB entry (page-table walk assist).
RTLB_MISS_PENALTY = 20


class Engine:
    """One tile's near-data engine."""

    def __init__(self, runtime, tile):
        self.runtime = runtime
        self.machine = runtime.machine
        self.tile = tile
        cfg = self.machine.config.engine
        self.config = cfg
        #: Offload task contexts in use (data-triggered actions run
        #: inline at cache fills and use the other half of the buffer).
        self.busy_offload = 0
        self._queue = deque()
        self.context_freed = Condition(f"engine{tile}.context")
        #: Fault state (:mod:`repro.sim.faults`). A *failed* engine is
        #: fail-stop for new work: in-flight tasks complete, spill-queued
        #: tasks are rerouted, and every later arrival degrades
        #: (Sec. VI-C). Stall/exhaustion windows make the engine NACK
        #: arrivals until the window closes.
        self.failed = False
        self.failed_at = None
        self._stalled_until = 0.0
        self._exhausted_until = 0.0
        #: Reverse TLB (Sec. VI-A1): translates cached physical lines
        #: back to virtual addresses before data-triggered actions run.
        #: LRU over pages; misses pay a refill penalty.
        self._rtlb = OrderedDict()

    # ------------------------------------------------------------------
    # rTLB
    # ------------------------------------------------------------------
    def rtlb_lookup(self, page):
        """Translate a physical page for a data-triggered action.

        Returns the added latency (0 on a hit, the refill penalty on a
        miss). The rTLB holds ``rtlb_entries`` pages, LRU-replaced.
        """
        self.machine.stats.add("engine.rtlb_lookups")
        if page in self._rtlb:
            self._rtlb.move_to_end(page)
            return 0
        self.machine.stats.add("engine.rtlb_misses")
        self._rtlb[page] = True
        while len(self._rtlb) > self.config.rtlb_entries:
            self._rtlb.popitem(last=False)
        return 0 if self.config.ideal else RTLB_MISS_PENALTY

    @property
    def offload_capacity(self):
        if self.config.ideal:
            return float("inf")
        return self.config.offload_contexts

    @property
    def has_free_context(self):
        return self.busy_offload < self.offload_capacity

    def accepting(self, at_time):
        """True when a task arriving at ``at_time`` can take a context.

        With no fault state this is exactly :attr:`has_free_context`;
        a failed engine never accepts, and stall/exhaustion windows
        NACK every arrival inside them.
        """
        if self.failed:
            return False
        if at_time < self._stalled_until or at_time < self._exhausted_until:
            return False
        return self.has_free_context

    # ------------------------------------------------------------------
    # fault state (driven by repro.sim.faults)
    # ------------------------------------------------------------------
    def fail(self, at_time=0.0):
        """Mark the engine failed (fail-stop for new work).

        In-flight tasks run to completion; spill-queued tasks have not
        started and are bounced to a healthy engine (or to on-core
        execution when none remains).
        """
        if self.failed:
            return
        self.failed = True
        self.failed_at = at_time
        machine = self.machine
        machine.stats.add("faults.engine_failures")
        if machine.events.active:
            machine.events.emit(EngineFailed(self.tile, at_time))
        pending, self._queue = list(self._queue), deque()
        for task in pending:
            self.runtime.reroute_task(self, task, at_time)
        # Waiters on context_freed will never get one here.
        machine.wake_all(self.context_freed)

    def stall(self, until):
        """NACK every offload arriving before ``until`` (transient stall)."""
        self._stalled_until = max(self._stalled_until, until)

    def exhaust(self, until):
        """Model task-context-buffer exhaustion until ``until``."""
        self._exhausted_until = max(self._exhausted_until, until)

    def kick(self, at_time=None):
        """Drain the spill queue while contexts are free.

        Called at the end of a stall/exhaustion window: queued tasks are
        normally re-accepted by ``_release`` when a context frees, but a
        window can leave free contexts *and* a non-empty queue with no
        completion event to trigger acceptance.
        """
        at_time = self.machine.now if at_time is None else at_time
        while self._queue and self.accepting(at_time):
            self._accept(self._queue.popleft(), at_time)

    # ------------------------------------------------------------------
    # task submission
    # ------------------------------------------------------------------
    def submit(self, program, at_time, name, on_accept=None, on_complete=None, near_memory=False, cid=None):
        """Submit an offloaded task arriving at ``at_time``.

        If a task context is free the task is accepted immediately;
        otherwise the engine NACKs (accounted as spill traffic back to
        the invoker) and the task waits for the next free context.
        Returns True when accepted without a NACK. ``cid`` is the
        invoke's correlation ID, echoed on every task-lifecycle event.
        """
        task = _PendingTask(program, name, on_accept, on_complete, near_memory, cid)
        if self.offer(task, at_time):
            return True
        self.machine.stats.add("engine.nacks")
        self._queue.append(task)
        if self.machine.events.active:
            self.machine.events.emit(
                EngineTask(self.tile, name, False, cid, at_time, len(self._queue))
            )
        return False

    def make_task(self, program, name, on_accept=None, on_complete=None, near_memory=False, cid=None):
        """Build a pending task for :meth:`offer` (bounded-retry mode)."""
        return _PendingTask(program, name, on_accept, on_complete, near_memory, cid)

    def offer(self, task, at_time):
        """Accept ``task`` if possible at ``at_time``; never queues.

        The retry path uses this directly: a rejected offer leaves the
        task with the caller (the invoking core's retry loop), unlike
        :meth:`submit` which parks rejected tasks in the spill queue.
        """
        if self.accepting(at_time):
            if self.machine.events.active:
                self.machine.events.emit(
                    EngineTask(self.tile, task.name, True, task.cid, at_time, len(self._queue))
                )
            self._accept(task, at_time)
            return True
        return False

    def nack(self, task, at_time):
        """Account a NACK for a task the invoker will retry itself."""
        self.machine.stats.add("engine.nacks")
        if self.machine.events.active:
            self.machine.events.emit(
                EngineTask(self.tile, task.name, False, task.cid, at_time, len(self._queue))
            )

    def _accept(self, task, at_time):
        self.busy_offload += 1
        self.machine.stats.add("engine.tasks")
        if self.machine.events.active:
            self.machine.events.emit(
                EngineTaskStart(self.tile, task.name, task.cid, at_time)
            )
        if task.on_accept is not None:
            task.on_accept(at_time)
        ctx = self.machine.spawn(
            self._run(task),
            tile=self.tile,
            name=task.name,
            is_engine=True,
            engine=self,
            at_time=at_time,
        )
        ctx.near_memory = task.near_memory
        ctx.cid = task.cid
        return ctx

    def _run(self, task):
        """Wrapper adding completion handling around the action program."""
        result = yield from task.program
        machine = self.machine
        if machine.events.active:
            machine.events.emit(
                EngineTaskDone(self.tile, task.name, task.cid, machine.sim_time())
            )
        self._release()
        if task.on_complete is not None:
            task.on_complete(result)
        return result

    def _release(self):
        self.busy_offload -= 1
        if self._queue and self.accepting(self.machine.now):
            task = self._queue.popleft()
            # The queued task starts when the context frees (now).
            self._accept(task, self.machine.now)
        else:
            self.machine.wake_all(self.context_freed)

    @property
    def queued_tasks(self):
        return len(self._queue)

    def __repr__(self):
        state = ", FAILED" if self.failed else ""
        return (
            f"Engine(tile{self.tile}, busy={self.busy_offload}/"
            f"{self.offload_capacity}, queued={self.queued_tasks}{state})"
        )


class _PendingTask:
    __slots__ = ("program", "name", "on_accept", "on_complete", "near_memory", "cid")

    def __init__(self, program, name, on_accept, on_complete, near_memory=False, cid=None):
        self.program = program
        self.name = name
        self.on_accept = on_accept
        self.on_complete = on_complete
        self.near_memory = near_memory
        self.cid = cid

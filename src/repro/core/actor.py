"""Actors: objects with near-data actions (Sec. V-A1).

An actor combines *data* (a payload of ``SIZE`` bytes at an address
assigned by Leviathan's allocator) with *actions* (generator methods
marked with :func:`action`) that execute near the data.

The reproduction keeps actors lightweight: the actor instance is an
ordinary Python object whose fields the workload manipulates directly
(functional behaviour), while ``addr``/``SIZE`` drive the timing model.
"""


def action(method):
    """Mark a generator method as a near-data action.

    Actions are the only methods that may be targeted by ``invoke``;
    marking them explicitly mirrors the paper's actor classes, where the
    set of near-data actions is part of the hardware/software contract
    (the Morph's vtable map, Sec. VI-B2).
    """
    method.__is_ndc_action__ = True
    return method


class Actor:
    """Base class for Leviathan actors.

    Subclasses declare ``SIZE`` (the payload size in bytes -- *not*
    padded; padding is the allocator's job) and define actions::

        class Node(Actor):
            SIZE = 24

            @action
            def lookup(self, env, key):
                yield Load(self.addr, self.SIZE)
                ...

    ``addr`` is assigned by :class:`repro.core.allocator.Allocator`.
    """

    #: Payload size in bytes; subclasses must override.
    SIZE = None

    def __init__(self):
        if self.SIZE is None:
            raise TypeError(
                f"{type(self).__name__} must declare SIZE (payload bytes)"
            )
        #: Base address, assigned by the allocator.
        self.addr = None
        #: The allocator that owns this actor (for deallocation).
        self.allocator = None

    @classmethod
    def actions(cls):
        """Names of all methods marked with :func:`action`."""
        return sorted(
            name
            for name in dir(cls)
            if getattr(getattr(cls, name, None), "__is_ndc_action__", False)
        )

    def action_fn(self, name):
        """The bound action ``name``; raises if not a declared action."""
        fn = getattr(self, name, None)
        if fn is None or not getattr(fn, "__is_ndc_action__", False):
            raise AttributeError(
                f"{type(self).__name__}.{name} is not a declared NDC action"
            )
        return fn

    def __repr__(self):
        where = f"{self.addr:#x}" if self.addr is not None else "unallocated"
        return f"{type(self).__name__}(addr={where}, size={self.SIZE})"

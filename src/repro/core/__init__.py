"""The Leviathan runtime: the paper's contribution.

Sub-modules map one-to-one onto Sec. V (programming interface) and
Sec. VI (architecture) of the paper:

- :mod:`repro.core.actor` / :mod:`repro.core.future` -- the actor-based
  reactive-programming building blocks (Sec. V-A1, V-A2).
- :mod:`repro.core.allocator` / :mod:`repro.core.mapping` -- the
  object-oriented allocator with power-of-two padding, LLC object
  mapping, and DRAM compaction (Sec. V-A3, VI-A3).
- :mod:`repro.core.offload` -- task offload and long-lived workloads:
  ``invoke`` with LOCAL/REMOTE/DYNAMIC placement, the invoke buffer, and
  engine NACK backpressure (Sec. V-B1, VI-B1).
- :mod:`repro.core.morph` -- data-triggered actions: constructors and
  destructors on cache insertion/eviction (Sec. V-B2, VI-B2).
- :mod:`repro.core.stream` -- streaming on top of long-lived +
  data-triggered support (Sec. V-B3, VI-B3).
- :mod:`repro.core.engine` -- the near-cache engine model (Sec. VI-A1).
- :mod:`repro.core.runtime` -- the :class:`Leviathan` facade that wires
  everything into a :class:`~repro.sim.system.Machine`.
- :mod:`repro.core.area` -- the hardware-overhead model (Table IV).
- :mod:`repro.core.fallback` -- very-large-object fallbacks (Sec. VI-C).
"""

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.morph import Morph
from repro.core.stream import Stream, STREAM_END
from repro.core.runtime import Leviathan

__all__ = [
    "Actor",
    "action",
    "Future",
    "WaitFuture",
    "Invoke",
    "Location",
    "Morph",
    "Stream",
    "STREAM_END",
    "Leviathan",
]

"""Streaming (Sec. V-B3, VI-B3, Figs. 10 and 12).

A Leviathan stream is implemented -- exactly as the paper describes --
by composing the other paradigms:

- the **producer** is a long-lived action (``gen_stream``) on an engine,
  pushing entries into a circular buffer in shared memory;
- the **consumer** reads sequential *phantom* addresses; data-triggered
  constructors copy entries from the circular buffer into the phantom
  lines, so the core sees prefetchable, regular loads;
- **flow control**: ``push`` blocks when the buffer is full; the
  consumer's ``pop`` bumps the core-side head pointer and notifies the
  engine once per cache line crossed, unblocking the producer; the
  hardware prefetcher is NACKed past the produced tail.

The consumer-side paper API is ``Future<T> next()``; in generator-based
Python the idiomatic equivalent is ``value = yield from stream.consume()``,
which returns :data:`STREAM_END` when the producer finishes.
"""

from repro.core.fallback import ThreadPairStream
from repro.core.morph import Morph
from repro.sim.events import DegradedToFallback, StreamBlocked, StreamPop, StreamPush
from repro.sim.ops import Compute, Condition, Load, Store, Wait

#: Returned by ``consume`` when the producer has terminated and the
#: buffer is drained.
STREAM_END = object()

#: Payload bytes of a head-pointer pop message (Sec. VI-B3).
POP_MESSAGE_BYTES = 8


class StreamTerminated(Exception):
    """Raised inside ``push`` when the consumer terminated the stream."""


class _StreamFuture:
    """The object ``Stream.next()`` returns (Fig. 12's ``Future<T>``)."""

    __slots__ = ("_stream",)

    def __init__(self, stream):
        self._stream = stream

    def wait(self):
        """Generator: resolves to the next entry (or STREAM_END)."""
        return (yield from self._stream.consume())


class Stream(Morph):
    """A decoupled producer/consumer stream of fixed-size objects.

    Subclasses override :meth:`gen_stream` (the producer action, run as
    a long-lived thread on the producer tile's engine) and call
    ``yield from self.push(obj)`` to emit entries.
    """

    def __init__(
        self,
        runtime,
        object_size,
        buffer_entries,
        consumer_tile,
        producer_tile=None,
        capacity_hint=1 << 16,
        name=None,
    ):
        super().__init__(
            runtime,
            level="l2",
            n_actors=capacity_hint,
            object_size=object_size,
            name=name or type(self).__name__,
        )
        machine = self.machine
        entries_per_line = max(1, machine.config.line_size // self.padded_size)
        if buffer_entries < 2 * entries_per_line:
            raise ValueError(
                f"stream buffer of {buffer_entries} entries is smaller than "
                f"two cache lines of entries ({2 * entries_per_line})"
            )
        self.buffer_entries = buffer_entries
        self.entries_per_line = entries_per_line
        self.consumer_tile = consumer_tile
        self.producer_tile = consumer_tile if producer_tile is None else producer_tile
        #: The circular buffer lives in ordinary shared memory ("the
        #: stream buffer resides in memory, not a separate hardware
        #: structure", Sec. IX).
        self.buffer_base = machine.address_space.alloc(
            buffer_entries * self.padded_size, align=machine.config.line_size
        )

        #: Consumer-side head (entries popped by the core).
        self.head = 0
        #: Engine-side head (advances on per-line pop messages).
        self.head_engine = 0
        #: Entries produced so far.
        self.tail = 0
        self.terminated = False
        self.producer_done = False
        self.space_avail = Condition(f"{self.name}.space")
        self.data_avail = Condition(f"{self.name}.data")
        self._producer_ctx = None
        #: Set when the producer engine is failed at :meth:`start`: the
        #: stream collapses to the Sec. VI-C message-queue fallback and
        #: push/consume delegate to it (no engine, no phantom space).
        self._fallback = None

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def gen_stream(self, env):
        """The producer action (override; generator yielding sim ops)."""
        return
        yield  # pragma: no cover

    def start(self):
        """Spawn the producer as a long-lived thread on its tile's engine.

        When the producer engine is marked failed (fault injection), the
        stream degrades to the Sec. VI-C message-queue fallback: both
        endpoints become conventional core threads passing entries
        through a :class:`~repro.core.fallback.ThreadPairStream`, the
        phantom range is unregistered, and push/consume delegate to the
        queue -- functionally identical, without the near-data benefit.
        """
        if self._producer_ctx is not None:
            raise RuntimeError("stream already started")
        engines = self.machine.engines
        if engines is not None and engines[self.producer_tile].failed:
            return self._start_degraded()
        self.machine.stats.add("stream.started")
        self._producer_ctx = self.machine.spawn(
            self._producer_program(),
            tile=self.producer_tile,
            name=f"{self.name}.producer",
            is_engine=True,
        )
        return self._producer_ctx

    def _producer_program(self):
        try:
            yield from self.gen_stream(self.runtime)
        except StreamTerminated:
            self.machine.stats.add("stream.terminated_early")
        self.producer_done = True
        self.machine.wake_all(self.data_avail)

    def _start_degraded(self):
        machine = self.machine
        machine.stats.add("stream.degraded")
        self._fallback = ThreadPairStream(
            self.runtime,
            self.object_size,
            self.buffer_entries,
            self.producer_tile,
            self.consumer_tile,
        )
        if machine.events.active:
            machine.events.emit(
                DegradedToFallback(
                    "stream-queue",
                    tile=self.producer_tile,
                    fallback=self.consumer_tile,
                    action=self.name,
                    time=machine.sim_time(),
                )
            )
        # Phantom space is engine machinery; the fallback uses plain
        # loads and stores, so the data-triggered range goes away.
        self.unregister()
        self._producer_ctx = machine.spawn(
            self._degraded_producer(),
            tile=self.producer_tile,
            name=f"{self.name}.producer-fallback",
        )
        return self._producer_ctx

    def _degraded_producer(self):
        try:
            yield from self.gen_stream(self.runtime)
        except StreamTerminated:
            self.machine.stats.add("stream.terminated_early")
        self.producer_done = True
        self._fallback.close()
        self.machine.wake_all(self.data_avail)

    def buffer_slot_addr(self, index):
        return self.buffer_base + (index % self.buffer_entries) * self.padded_size

    def push(self, obj):
        """Producer: emit ``obj``; blocks while the buffer is full.

        Functionally the value is deposited at the entry's phantom
        address immediately (the constructor is the timing model of the
        later copy); the timing cost here is the store into the circular
        buffer plus bookkeeping.
        """
        if self._fallback is not None:
            yield from self._push_degraded(obj)
            return
        while self.tail - self.head_engine >= self.buffer_entries:
            if self.terminated:
                raise StreamTerminated()
            self.machine.stats.add("stream.push_blocks")
            if self.machine.events.active:
                self.machine.events.emit(
                    StreamBlocked(self.name, "producer", self.machine.sim_time())
                )
            yield Wait(self.space_avail)
        if self.terminated:
            raise StreamTerminated()
        index = self.tail
        yield Store(self.buffer_slot_addr(index), self.padded_size)
        yield Compute(2)  # pointer bump + wrap check on the engine
        self.machine.mem[self.get_actor_addr(index)] = obj
        self.tail += 1
        self.machine.stats.add("stream.pushes")
        if self.machine.events.active:
            self.machine.events.emit(
                StreamPush(
                    self.name,
                    index,
                    time=self.machine.sim_time(),
                    occupancy=self.tail - self.head_engine,
                    tile=self.producer_tile,
                )
            )
        self.machine.wake_all(self.data_avail)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def consume(self):
        """Consumer: ``value = yield from stream.consume()``.

        Returns the next entry, or :data:`STREAM_END` after the producer
        finishes and the buffer drains. The load of the phantom address
        triggers the stream's data-triggered constructor on a line
        crossing (and the L2 prefetcher ahead of it).
        """
        if self._fallback is not None:
            return (yield from self._consume_degraded())
        while self.head >= self.tail:
            if self.producer_done:
                return STREAM_END
            self.machine.stats.add("stream.consume_blocks")
            if self.machine.events.active:
                self.machine.events.emit(
                    StreamBlocked(self.name, "consumer", self.machine.sim_time())
                )
            yield Wait(self.data_avail)
        index = self.head
        addr = self.get_actor_addr(index)
        yield Load(addr, self.object_size)
        value = self.machine.mem.get(addr)
        yield from self._pop(index)
        return value

    def next(self):
        """Paper-fidelity API (Fig. 12): ``Future<T> next()``.

        Returns a lightweight future whose ``wait`` is the consuming
        generator::

            future = stream.next()
            value = yield from future.wait()

        Equivalent to ``value = yield from stream.consume()``.
        """
        return _StreamFuture(self)

    def _pop(self, index):
        """The pop instruction: bump the head, notify the engine per line."""
        self.head = index + 1
        self.machine.stats.add("stream.pops")
        messaged = self.head % self.entries_per_line == 0 or self.head >= self.tail
        if self.machine.events.active:
            self.machine.events.emit(
                StreamPop(
                    self.name,
                    index,
                    messaged,
                    time=self.machine.sim_time(),
                    occupancy=self.tail - self.head,
                    tile=self.consumer_tile,
                )
            )
        if messaged:
            # Crossed into a new line: message the producing engine to
            # bump its head pointer and invalidate the old stream head.
            self.machine.hierarchy.noc.send(
                self.consumer_tile, self.producer_tile, POP_MESSAGE_BYTES
            )
            old_line = self.get_actor_addr(index) // self.machine.config.line_size
            self.machine.hierarchy.l1[self.consumer_tile].invalidate(old_line)
            self.machine.hierarchy.l2[self.consumer_tile].invalidate(old_line)
            self.head_engine = self.head
            self.machine.stats.add("stream.pop_messages")
            self.machine.wake_all(self.space_avail)
        yield Compute(1)

    def terminate(self):
        """Consumer-initiated termination: the producer's next ``push``
        raises :class:`StreamTerminated` and the producer thread exits."""
        self.terminated = True
        self.machine.wake_all(self.space_avail)
        if self._fallback is not None:
            self.machine.wake_all(self._fallback.space_avail)

    # ------------------------------------------------------------------
    # degraded mode (Sec. VI-C message-queue fallback)
    # ------------------------------------------------------------------
    def _push_degraded(self, obj):
        fb = self._fallback
        while fb.tail - fb.head >= fb.buffer_entries:
            if self.terminated:
                raise StreamTerminated()
            self.machine.stats.add("stream.push_blocks")
            yield Wait(fb.space_avail)
        if self.terminated:
            raise StreamTerminated()
        yield from fb.push(obj)
        self.tail += 1
        self.machine.stats.add("stream.pushes")

    def _consume_degraded(self):
        value = yield from self._fallback.pop()
        if value is ThreadPairStream.END:
            return STREAM_END
        self.head += 1
        self.head_engine = self.head
        self.machine.stats.add("stream.pops")
        return value

    # ------------------------------------------------------------------
    # data-triggered underpinnings
    # ------------------------------------------------------------------
    def construct(self, view, index):
        """Copy entry ``index`` from the circular buffer into phantom space.

        Runs on the consumer tile's engine when the phantom line is
        filled; reading the buffer slot pulls the line from the producer
        engine's cache (real coherence traffic between the two engines).
        """
        if index >= self.tail:
            # Past the produced tail (end-of-stream partial line): the
            # hardware would stall; nothing to copy.
            return
        yield Load(self.buffer_slot_addr(index), self.padded_size)
        yield Compute(2)

    def destruct(self, view, index, dirty):
        """Consumed stream lines are dead; eviction is free."""
        return
        yield  # pragma: no cover

    def allow_prefetch(self, index):
        """NACK prefetches past the produced tail (Sec. VI-B3)."""
        return index < self.tail

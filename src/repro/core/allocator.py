"""The object-oriented memory allocator (Sec. V-A3, Fig. 7, Fig. 8).

The allocator's three jobs, from the paper:

1. **Pad small objects** to the next power-of-two size so no object
   straddles a cache-line boundary (Fig. 8b).
2. **Map large objects to one LLC bank** by padding to a power-of-two
   number of lines and registering the pool for the LSB-ignoring
   bank-index function (Sec. VI-A3).
3. **Pack objects densely in DRAM** to avoid the fragmentation padding
   would cause -- the pool registers a cache<->DRAM translation entry.

Pools are contiguous in both cache- and DRAM-address space (the paper's
pool-based design). ``padding=False`` / ``compaction=False`` switches
reproduce the paper's ablations (tākō-like and Livia-like layouts).
"""


def padded_size_of(object_size, line_size=64, max_object_lines=4):
    """Leviathan's padded size for a payload of ``object_size`` bytes.

    Sub-line objects pad to the next power of two (24 B -> 32 B); larger
    objects pad to a power-of-two number of lines (80 B -> 128 B).
    Raises ``ValueError`` beyond the hardware-supported maximum
    (Sec. VI-C; the fallback module handles those).
    """
    if object_size <= 0:
        raise ValueError(f"object size must be positive, got {object_size}")
    padded = 1
    while padded < object_size:
        padded *= 2
    if padded > line_size * max_object_lines:
        raise ValueError(
            f"object of {object_size} B pads to {padded} B, beyond the "
            f"hardware maximum of {line_size * max_object_lines} B"
        )
    return padded


class Pool:
    """One contiguous slab of identically-sized objects."""

    __slots__ = ("base", "capacity", "padded_size", "entry")

    def __init__(self, base, capacity, padded_size, entry):
        self.base = base
        self.capacity = capacity
        self.padded_size = padded_size
        #: The pool's translation entry (None when compaction is off).
        self.entry = entry

    @property
    def bound(self):
        return self.base + self.capacity * self.padded_size

    def addr_of(self, index):
        if not 0 <= index < self.capacity:
            raise IndexError(f"object index {index} out of pool range")
        return self.base + index * self.padded_size

    def index_of(self, addr):
        if not self.base <= addr < self.bound:
            raise ValueError(f"address {addr:#x} outside pool")
        return (addr - self.base) // self.padded_size


class Allocator:
    """``Allocator<T>``: allocate/deallocate actors of one type.

    Parameters
    ----------
    runtime:
        The :class:`~repro.core.runtime.Leviathan` runtime (provides the
        address space and the mapping registry).
    object_size:
        Payload bytes per object (the actor's ``SIZE``).
    capacity:
        Objects per pool slab; further slabs are allocated on demand.
    padding:
        When False, objects are laid out densely at their natural size
        and may straddle cache lines (the prior-work layout the paper's
        ablations use); no translation entry is registered, so DRAM
        layout equals cache layout.
    compaction:
        When False (but padding on), objects are padded in DRAM too --
        the "25% memory fragmentation" layout the paper charges to prior
        work in Sec. VIII-B.
    llc_mapping:
        When False (but padding on), the pool registers no bank-shift
        mapping, so multi-line objects spread across LLC banks -- the
        "without LLC object mapping" ablation of Fig. 18.
    """

    def __init__(
        self,
        runtime,
        object_size,
        capacity=4096,
        padding=True,
        compaction=True,
        llc_mapping=True,
        actor_cls=None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.runtime = runtime
        self.object_size = object_size
        self.capacity = capacity
        self.padding = padding
        self.compaction = compaction and padding and llc_mapping
        self.llc_mapping = llc_mapping and padding
        self.actor_cls = actor_cls
        cfg = runtime.machine.config
        if padding:
            self.padded_size = padded_size_of(
                object_size, cfg.line_size, cfg.leviathan.max_object_lines
            )
        else:
            # Truly dense: objects at their natural size, straddling
            # cache-line boundaries wherever they fall.
            self.padded_size = object_size
        self.pools = []
        self._free = []
        self._next_index = 0  # within the newest pool

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------
    def _grow(self):
        from repro.core.mapping import TranslationEntry

        machine = self.runtime.machine
        size = self.capacity * self.padded_size
        base = machine.address_space.alloc(size, align=max(self.padded_size, 64))
        entry = None
        if self.compaction:
            dram_base = machine.address_space.alloc_dram(
                self.capacity * self.object_size, align=64
            )
            entry = TranslationEntry(
                cache_base=base,
                cache_bound=base + size,
                dram_base=dram_base,
                object_size=self.object_size,
                padded_size=self.padded_size,
                line_size=machine.config.line_size,
            )
            self.runtime.mapping.register(entry)
            machine.stats.add("allocator.translation_entries")
        elif self.llc_mapping:
            # Padded in DRAM too: register only the bank-shift mapping
            # (identity translation) so large objects still map to one
            # bank; DRAM fragmentation is the cost.
            entry = TranslationEntry(
                cache_base=base,
                cache_bound=base + size,
                dram_base=base,
                object_size=self.padded_size,
                padded_size=self.padded_size,
                line_size=machine.config.line_size,
            )
            self.runtime.mapping.register(entry)
        pool = Pool(base, self.capacity, self.padded_size, entry)
        self.pools.append(pool)
        self._next_index = 0
        machine.stats.add("allocator.pools")
        return pool

    # ------------------------------------------------------------------
    # public interface (Fig. 7)
    # ------------------------------------------------------------------
    def allocate(self):
        """Allocate one object; returns its address (or an actor instance
        when the allocator was created with an ``actor_cls``)."""
        if self._free:
            addr = self._free.pop()
        else:
            if not self.pools or self._next_index >= self.pools[-1].capacity:
                self._grow()
            pool = self.pools[-1]
            addr = pool.addr_of(self._next_index)
            self._next_index += 1
        self.runtime.machine.stats.add("allocator.allocations")
        if self.actor_cls is None:
            return addr
        actor = self.actor_cls()
        actor.addr = addr
        actor.allocator = self
        return actor

    def deallocate(self, obj):
        """Return an object (address or actor) to the allocator."""
        addr = obj if isinstance(obj, int) else obj.addr
        if addr is None:
            raise ValueError("object was never allocated")
        self._free.append(addr)
        self.runtime.machine.stats.add("allocator.deallocations")

    def allocate_array(self, count):
        """Allocate ``count`` objects contiguously; returns their addresses.

        Convenience for array-structured workloads (pixel arrays, vertex
        arrays); grows pools as needed but keeps each slab contiguous.
        """
        addrs = []
        for _ in range(count):
            addrs.append(self.allocate() if self.actor_cls is None else self.allocate().addr)
        return addrs

    # ------------------------------------------------------------------
    # memory-footprint accounting (used by the fragmentation analysis)
    # ------------------------------------------------------------------
    def dram_bytes_per_object(self):
        """Bytes each object occupies in DRAM under this configuration."""
        return self.object_size if self.compaction else self.padded_size

    def fragmentation(self):
        """Fraction of DRAM wasted by padding (0.0 when compaction is on)."""
        per_obj = self.dram_bytes_per_object()
        return 1.0 - self.object_size / per_obj

    def __repr__(self):
        return (
            f"Allocator(size={self.object_size}B, padded={self.padded_size}B, "
            f"pools={len(self.pools)}, padding={self.padding}, "
            f"compaction={self.compaction})"
        )

"""Data-triggered actions: Morphs (Sec. V-B2, VI-B2, Fig. 11).

A Morph registers an address range of *phantom* actors at a cache level
(L2 or LLC). The data only exists in the cache: constructors run when a
line of the range is inserted (instead of fetching from the next level)
and destructors run when it is evicted (instead of writing back).

The major usability win over prior work (tākō [66]) is reproduced
faithfully: applications define constructors/destructors over *objects*,
and Leviathan maps cache-line events onto object events --

- objects smaller than a line: one line insertion triggers the
  constructors of every object in the line (executed in parallel on the
  engine: latency is the max, work is the sum);
- objects larger than a line: one action triggers, and all of the
  object's lines are inserted/evicted as a unit.
"""

from repro.sim.hierarchy import ConstructResult


class MorphLayoutError(ValueError):
    """The requested layout cannot support data-triggered actions."""


class MorphView:
    """Per-engine local state for actions running on that engine.

    A Morph's address range may span LLC banks, so each engine holds a
    *view* (Fig. 11); actions receive their engine's view and may keep
    engine-local state in ``view.state``.
    """

    __slots__ = ("morph", "tile", "state")

    def __init__(self, morph, tile):
        self.morph = morph
        self.tile = tile
        #: Free-form engine-local state (e.g. PHI's per-bank update log).
        self.state = {}

    def get_offset(self, addr):
        """Actor index of the actor at ``addr`` (for use by actions)."""
        return self.morph.index_of(addr)


class Morph:
    """A registered range of phantom actors with data-triggered actions.

    Subclasses override :meth:`construct` and :meth:`destruct` (generator
    functions yielding simulator ops). Registration allocates the
    phantom range through the Leviathan allocator so padding and LLC
    object mapping apply; ``unregister`` flushes the range, firing
    destructors for everything still cached.
    """

    def __init__(self, runtime, level, n_actors, object_size, name=None, padding=True):
        if level not in ("l2", "llc"):
            raise ValueError(f"morph level must be 'l2' or 'llc', got {level!r}")
        if n_actors <= 0:
            raise ValueError(f"n_actors must be positive, got {n_actors}")
        self.runtime = runtime
        self.machine = runtime.machine
        self.level = level
        self.n_actors = n_actors
        self.object_size = object_size
        self.name = name or type(self).__name__
        self.registered = False

        line_size = self.machine.config.line_size
        if not padding and line_size % object_size != 0:
            # The outcome the paper demonstrates in Sec. VIII-A: without
            # the allocator's padding, lines contain partial objects, and
            # "constructors cannot initialize a portion of an object".
            raise MorphLayoutError(
                f"{object_size} B objects do not divide {line_size} B lines; "
                "data-triggered actions require Leviathan's padded layout"
            )

        # Phantom actors are allocated through the Leviathan allocator:
        # padded in cache-address space, in one contiguous pool. They are
        # never DRAM-backed, so compaction state is irrelevant, but the
        # pool still registers the bank-shift mapping for large objects.
        self._allocator = runtime.allocator(
            object_size, capacity=n_actors, padding=padding, compaction=False
        )
        pool = self._allocator._grow()
        self.pool = pool
        self.base = pool.base
        self.padded_size = pool.padded_size
        self.bound = pool.bound
        self.views = [MorphView(self, t) for t in range(self.machine.config.n_tiles)]
        runtime.register_morph(self)

    # ------------------------------------------------------------------
    # application interface (Fig. 11)
    # ------------------------------------------------------------------
    def get_actor_addr(self, index):
        """Address of actor ``index`` (for use by cores)."""
        return self.pool.addr_of(index)

    def index_of(self, addr):
        """Actor index containing ``addr`` (for use by actions)."""
        return self.pool.index_of(addr)

    def construct(self, view, index):
        """Constructor action for actor ``index`` (override; generator)."""
        return
        yield  # pragma: no cover

    def destruct(self, view, index, dirty):
        """Destructor action for actor ``index`` (override; generator)."""
        return
        yield  # pragma: no cover

    def allow_prefetch(self, index):
        """May the hardware prefetcher construct actor ``index`` early?"""
        return True

    def unregister(self):
        """Flush the range (firing destructors) and remove the Morph."""
        if not self.registered:
            return
        from repro.sim.address import Region

        self.machine.stats.add("morph.unregisters")
        self.machine.hierarchy.flush_range(Region(self.base, self.bound - self.base))
        self.runtime.unregister_morph(self)

    # ------------------------------------------------------------------
    # hierarchy-facing machinery
    # ------------------------------------------------------------------
    def covers_line(self, line):
        addr = line * self.machine.config.line_size
        return self.base <= addr < self.bound

    def _objects_in_line(self, line):
        """(first_index, last_index) of actors overlapping ``line``."""
        line_size = self.machine.config.line_size
        lo = max(line * line_size, self.base)
        hi = min((line + 1) * line_size, self.bound) - 1
        return self.pool.index_of(lo), self.pool.index_of(hi)

    def object_lines(self, index):
        """All cache lines of actor ``index``."""
        line_size = self.machine.config.line_size
        base = self.pool.addr_of(index)
        first = base // line_size
        last = (base + self.padded_size - 1) // line_size
        return list(range(first, last + 1))

    def handle_miss(self, tile, line):
        """Run constructors for the fill of ``line``; returns the result.

        The engine's rTLB translates the physical line back to a
        virtual actor address first (a miss pays the refill penalty);
        constructors then execute on the engine at ``tile``. When that
        engine is marked failed (fault injection), the Sec. VI-C
        fallback applies: the actions run *on the core* instead, at full
        core instruction cost, with identical functional effects.
        """
        on_engine = self._engine_alive(tile)
        rtlb_penalty = self._rtlb_translate(tile, line) if on_engine else 0
        first, last = self._objects_in_line(line)
        view = self.views[tile]
        if self.padded_size > self.machine.config.line_size:
            # Large object: one action constructs all its lines at once.
            index = first
            latency, _ = self.machine.run_inline(
                self.construct(view, index),
                tile,
                is_engine=on_engine,
                name=f"{self.name}.construct[{index}]",
            )
            return ConstructResult(rtlb_penalty + latency, self.object_lines(index))
        # Small objects: every object in the line constructs in parallel
        # on the engine (serially when degraded to the core).
        worst = 0.0
        total = 0.0
        for index in range(first, last + 1):
            latency, _ = self.machine.run_inline(
                self.construct(view, index),
                tile,
                is_engine=on_engine,
                name=f"{self.name}.construct[{index}]",
            )
            worst = max(worst, latency)
            total += latency
        cost = worst if on_engine else total
        return ConstructResult(rtlb_penalty + cost, [line])

    def handle_evict(self, tile, line, dirty):
        """Run destructors for the eviction of ``line``."""
        on_engine = self._engine_alive(tile)
        if on_engine:
            self._rtlb_translate(tile, line)
        first, last = self._objects_in_line(line)
        view = self.views[tile]
        if self.padded_size > self.machine.config.line_size:
            index = first
            self.machine.run_inline(
                self.destruct(view, index, dirty),
                tile,
                is_engine=on_engine,
                name=f"{self.name}.destruct[{index}]",
            )
            # Large objects evict as a unit: drop the sibling lines too.
            self._drop_sibling_lines(tile, line, index)
            return True
        for index in range(first, last + 1):
            self.machine.run_inline(
                self.destruct(view, index, dirty),
                tile,
                is_engine=on_engine,
                name=f"{self.name}.destruct[{index}]",
            )
        return True

    def _engine_alive(self, tile):
        """False when the tile's engine is failed: actions degrade to the
        core (Sec. VI-C), skipping the rTLB and paying core latencies."""
        engines = self.machine.engines
        if engines is None or not engines[tile].failed:
            return True
        self.machine.stats.add("faults.actions_on_core")
        if self.machine.events.active:
            from repro.sim.events import DegradedToFallback

            self.machine.events.emit(
                DegradedToFallback(
                    "construct-on-core",
                    tile=tile,
                    fallback=tile,
                    action=self.name,
                    time=self.machine.sim_time(),
                )
            )
        return False

    def _rtlb_translate(self, tile, line):
        """Account the engine's reverse translation of ``line``."""
        self.machine.stats.add("morph.rtlb_lookups")
        engines = self.machine.engines
        if not engines:
            return 0
        page = (line * self.machine.config.line_size) // self.machine.config.page_size
        return engines[tile].rtlb_lookup(page)

    def handle_prefetch_probe(self, tile, line):
        first, last = self._objects_in_line(line)
        return all(self.allow_prefetch(i) for i in range(first, last + 1))

    def _drop_sibling_lines(self, tile, line, index):
        """Invalidate the other lines of a large object on destruction.

        Destruction evicts all lines corresponding to the object
        (Sec. VI-B2); sibling lines are dropped without re-firing the
        destructor.
        """
        hierarchy = self.machine.hierarchy
        caches = (
            [hierarchy.llc[tile]]
            if self.level == "llc"
            else [hierarchy.l2[tile], hierarchy.l1[tile], hierarchy.engine_l1[tile]]
        )
        for sibling in self.object_lines(index):
            if sibling == line:
                continue
            for cache in caches:
                cache.invalidate(sibling)

"""The :class:`Leviathan` runtime facade (Sec. III, VI).

Attaching a ``Leviathan`` to a :class:`~repro.sim.system.Machine`:

- adds one near-data engine per tile,
- creates the per-core invoke buffers,
- and installs the hierarchy hooks that implement the LLC object
  mapping, DRAM compaction, and data-triggered actions.

A machine without a runtime is the paper's baseline multicore; all of
Leviathan's hardware additions are "minimally disruptive" (Sec. VI-D)
and a runtime with no registered morphs/pools behaves identically to
the baseline.
"""

from repro.core.allocator import Allocator
from repro.core.engine import NACK_BYTES, Engine
from repro.core.mapping import MappingRegistry
from repro.core.offload import InvokeBuffer
from repro.sim.events import DegradedToFallback, EngineTaskDone, EngineTaskStart
from repro.sim.hierarchy import HierarchyHooks


class LeviathanHooks(HierarchyHooks):
    """Hierarchy hooks backed by the runtime's registries."""

    def __init__(self, runtime):
        self.runtime = runtime

    def bank_shift(self, line):
        return self.runtime.mapping.bank_shift(line)

    def translate(self, line):
        return self.runtime.mapping.translate(line)

    def on_miss(self, level, tile, line):
        morph = self.runtime.find_morph(line, level)
        if morph is None:
            return None
        return morph.handle_miss(tile, line)

    def on_evict(self, level, tile, line, dirty):
        morph = self.runtime.find_morph(line, level)
        if morph is None:
            return False
        return morph.handle_evict(tile, line, dirty)

    def morph_level(self, line):
        for base_line, bound_line, morph_level, _ in self.runtime._morphs:
            if base_line <= line < bound_line:
                return morph_level
        return None

    def allow_prefetch(self, level, tile, line):
        morph = self.runtime.find_morph(line, level)
        if morph is None:
            return True
        return morph.handle_prefetch_probe(tile, line)


class Leviathan:
    """The runtime: allocators, morphs, engines, and invoke machinery."""

    def __init__(self, machine):
        if machine.leviathan is not None:
            raise RuntimeError("machine already has a Leviathan runtime")
        self.machine = machine
        machine.leviathan = self
        cfg = machine.config
        self.mapping = MappingRegistry(cfg.line_size)
        self.engines = [Engine(self, t) for t in range(cfg.n_tiles)]
        machine.engines = self.engines
        self.invoke_buffers = [
            InvokeBuffer(machine, t, cfg.core.invoke_buffer_entries)
            for t in range(cfg.n_tiles)
        ]
        self.migration_ticks = 0
        #: (base_line, bound_line, level, morph) registration records.
        self._morphs = []
        self.hooks = LeviathanHooks(self)
        machine.hierarchy.hooks = self.hooks

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocator(
        self,
        object_size,
        capacity=4096,
        padding=True,
        compaction=True,
        llc_mapping=True,
        actor_cls=None,
    ):
        """Create an ``Allocator<T>`` for objects of ``object_size`` bytes.

        ``padding=False`` / ``compaction=False`` / ``llc_mapping=False``
        reproduce the prior-work layouts used by the paper's ablations.
        """
        return Allocator(
            self,
            object_size,
            capacity=capacity,
            padding=padding,
            compaction=compaction,
            llc_mapping=llc_mapping,
            actor_cls=actor_cls,
        )

    def allocator_for(self, actor_cls, capacity=4096, **kwargs):
        """An allocator producing instances of an Actor subclass."""
        return self.allocator(
            actor_cls.SIZE, capacity=capacity, actor_cls=actor_cls, **kwargs
        )

    def allocator_auto(self, object_size, capacity=4096, **kwargs):
        """An allocator that transparently falls back beyond the
        hardware maximum (Sec. VI-C).

        Objects up to ``max_object_lines`` cache lines get the full
        padded/compacted/bank-mapped treatment; larger objects resort to
        plain malloc (line-aligned, padded in DRAM, spread across
        banks) -- functionally correct, without the near-data benefit,
        and with no change to the programming interface.
        """
        from repro.core.fallback import MallocAllocator, exceeds_hardware_limit

        if exceeds_hardware_limit(object_size, self.machine.config):
            self.machine.stats.add("allocator.fallbacks")
            return MallocAllocator(self, object_size)
        return self.allocator(object_size, capacity=capacity, **kwargs)

    # ------------------------------------------------------------------
    # morph registry
    # ------------------------------------------------------------------
    def register_morph(self, morph):
        line_size = self.machine.config.line_size
        base_line = morph.base // line_size
        bound_line = (morph.bound + line_size - 1) // line_size
        for existing_base, existing_bound, _, existing in self._morphs:
            if base_line < existing_bound and existing_base < bound_line:
                raise ValueError(
                    f"morph {morph.name} overlaps registered morph {existing.name}"
                )
        self._morphs.append((base_line, bound_line, morph.level, morph))
        morph.registered = True
        self.machine.stats.add("morph.registrations")

    def unregister_morph(self, morph):
        for i, (_, _, _, existing) in enumerate(self._morphs):
            if existing is morph:
                del self._morphs[i]
                morph.registered = False
                return
        raise KeyError(f"morph {morph.name} is not registered")

    def find_morph(self, line, level):
        for base_line, bound_line, morph_level, morph in self._morphs:
            if morph_level == level and base_line <= line < bound_line:
                return morph
        return None

    @property
    def morphs(self):
        return [record[3] for record in self._morphs]

    # ------------------------------------------------------------------
    # resilience (Sec. VI-C degradation, driven by repro.sim.faults)
    # ------------------------------------------------------------------
    def healthy_engine_near(self, tile):
        """The healthy engine closest to ``tile`` (XY hops, tile id ties).

        Returns None when every engine is failed. Deterministic: the
        same fault state always yields the same reroute target.
        """
        noc = self.machine.hierarchy.noc
        best = None
        best_key = None
        for engine in self.engines:
            if engine.failed:
                continue
            key = (noc.hops(tile, engine.tile), engine.tile)
            if best is None or key < best_key:
                best, best_key = engine, key
        return best

    def reroute_task(self, failed_engine, task, at_time):
        """Move a not-yet-started task off a failed engine.

        Spill-queued tasks bounce to the nearest healthy engine (paying
        the NACK-back plus re-send NoC traffic); with no healthy engine
        left they run on the failed tile's core instead.
        """
        machine = self.machine
        machine.stats.add("faults.rerouted_tasks")
        target = self.healthy_engine_near(failed_engine.tile)
        if target is None:
            if machine.events.active:
                machine.events.emit(
                    DegradedToFallback(
                        "on-core", failed_engine.tile, failed_engine.tile,
                        task.name, task.cid, at_time,
                    )
                )
            self.run_task_on_core(task, failed_engine.tile, at_time=at_time)
            return
        if machine.events.active:
            machine.events.emit(
                DegradedToFallback(
                    "reroute", failed_engine.tile, target.tile,
                    task.name, task.cid, at_time,
                )
            )
        machine.hierarchy.noc.send(failed_engine.tile, target.tile, NACK_BYTES)
        if not target.offer(task, at_time):
            target._queue.append(task)

    def run_task_on_core(self, task, tile, at_time=None):
        """Execute a pending engine task on ``tile``'s core (Sec. VI-C).

        The last-resort degradation: the task's program runs as an
        ordinary core thread, with completion callbacks (buffer release,
        future fill) preserved so invokes stay functionally identical.
        """
        machine = self.machine
        machine.stats.add("faults.on_core_tasks")
        at_time = machine.now if at_time is None else at_time
        if task.on_accept is not None:
            task.on_accept(at_time)
        name = f"{task.name}@core-fallback"

        def wrapper():
            if machine.events.active:
                machine.events.emit(
                    EngineTaskStart(tile, name, task.cid, machine.sim_time())
                )
            result = yield from task.program
            if machine.events.active:
                machine.events.emit(
                    EngineTaskDone(tile, name, task.cid, machine.sim_time())
                )
            if task.on_complete is not None:
                task.on_complete(result)
            return result

        return machine.spawn(wrapper(), tile=tile, name=name, at_time=at_time)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def spawn(self, program, tile, name=None):
        """Spawn a regular (core) thread on ``tile``."""
        return self.machine.spawn(program, tile, name=name)

    def __repr__(self):
        return (
            f"Leviathan({len(self.engines)} engines, "
            f"{len(self._morphs)} morphs, {len(self.mapping)} pools)"
        )

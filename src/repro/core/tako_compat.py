"""A tākō-style line-granularity interface, for comparison (Sec. V-B2).

tākō [66] exposes data-triggered actions at *cache-line* granularity
(``onMiss`` / ``onEviction`` / ``onWriteback`` over lines), leaving
layout, alignment, and padding to the programmer. The paper's argument
for Leviathan's object-granularity Morphs is exactly that this burden
disappears: "code can be much simpler because actions execute on
objects, not cache lines".

:class:`LineMorph` reproduces the tākō contract on top of the same
hardware hooks, so the two programming models can be compared on one
substrate:

- handlers receive a *line address*, not an object index;
- nothing pads or aligns data -- if objects straddle lines, the handler
  sees partial objects (the Fig. 16 failure mode);
- there is no DRAM compaction and no LLC object mapping.
"""

from repro.core.morph import Morph


class LineMorph(Morph):
    """Data-triggered actions over raw cache lines (the tākō model).

    Subclasses override :meth:`on_miss` and :meth:`on_eviction`, each a
    generator receiving the *line base address*. The registered range
    covers ``n_lines`` whole cache lines; how application objects map
    onto them is entirely the subclass's problem.
    """

    def __init__(self, runtime, level, n_lines, name=None):
        line_size = runtime.machine.config.line_size
        # One "actor" per line: the object IS the cache line.
        super().__init__(
            runtime,
            level=level,
            n_actors=n_lines,
            object_size=line_size,
            name=name or type(self).__name__,
        )

    # ------------------------------------------------------------------
    # the tākō-style interface
    # ------------------------------------------------------------------
    def line_addr(self, line_index):
        """Base address of registered line ``line_index``."""
        return self.get_actor_addr(line_index)

    def line_index(self, addr):
        """Registered line index containing ``addr``."""
        return self.index_of(addr)

    def on_miss(self, view, line_addr):
        """Line fill handler (override; generator)."""
        return
        yield  # pragma: no cover

    def on_eviction(self, view, line_addr, dirty):
        """Line eviction handler (override; generator).

        tākō distinguishes ``onEviction`` (clean) from ``onWriteback``
        (dirty); override :meth:`on_writeback` to split them.
        """
        return
        yield  # pragma: no cover

    def on_writeback(self, view, line_addr):
        """Dirty-line eviction handler; defaults to :meth:`on_eviction`."""
        return self.on_eviction(view, line_addr, True)

    # ------------------------------------------------------------------
    # adaptation onto the object-granularity machinery
    # ------------------------------------------------------------------
    def construct(self, view, index):
        yield from self.on_miss(view, self.line_addr(index))

    def destruct(self, view, index, dirty):
        if dirty:
            yield from self.on_writeback(view, self.line_addr(index))
        else:
            yield from self.on_eviction(view, self.line_addr(index), False)

"""Reproduction of *Leviathan: A Unified System for General-Purpose
Near-Data Computing* (Schwedock & Beckmann, MICRO 2024).

The package is organised as:

- :mod:`repro.sim` -- the substrate: a coarse-grained, event-driven
  simulator of a tiled multicore (caches, directory coherence, mesh NoC,
  DRAM with memory-controller caches, and an event-count energy model).
- :mod:`repro.core` -- the paper's contribution: the Leviathan runtime
  (actors, futures, the padding/compaction allocator, task offload,
  data-triggered morphs, streams, and near-data engines).
- :mod:`repro.workloads` -- the four case studies (PHI commutative
  scatter-updates, near-cache decompression, hash-table lookups, and
  HATS decoupled graph traversal) plus their baselines.
- :mod:`repro.experiments` -- the benchmark harness that regenerates
  every table and figure in the paper's evaluation.
"""

from repro.sim.config import SystemConfig
from repro.core.runtime import Leviathan
from repro.core.actor import Actor, action
from repro.core.future import Future
from repro.core.offload import Location

__all__ = [
    "SystemConfig",
    "Leviathan",
    "Actor",
    "action",
    "Future",
    "Location",
    "__version__",
]

__version__ = "1.0.0"

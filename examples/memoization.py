#!/usr/bin/env python
"""Near-cache memoization via task offload (Table I, [94, 95]).

Zhang & Sanchez accelerate memoization by keeping the memo table near
the cache and offloading lookups. Here an expensive function's results
memoize into actor-held entries at their LLC banks: a ``lookup_or_mark``
task probes and claims the entry near the data, and the core only runs
the expensive computation on a genuine miss, then offloads the insert.

Compare against (a) no memoization and (b) a core-managed memo table
that drags entries through the private caches.

Run:  python examples/memoization.py
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.distributions import zipfian_indices

N_KEYS = 512
N_CALLS = 2048
COMPUTE_COST = 300  # instructions of the memoized function
MISS = object()


def expensive(x):
    return x * x * 31 % 1_000_003


def scaled_config():
    return SystemConfig(
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4),
        llc=CacheConfig(size_kb=4, ways=8, tag_latency=3, data_latency=5),
    )


class MemoEntry(Actor):
    """One memo-table slot; probed and filled near its LLC bank."""

    SIZE = 16

    @action
    def lookup(self, env, key):
        yield Load(self.addr, 16)
        yield Compute(3)
        record = env.machine.mem.get(self.addr)
        if record is not None and record[0] == key:
            return record[1]
        return -1  # miss sentinel

    @action
    def insert(self, env, key, value):
        mem = env.machine.mem
        yield Compute(2)
        yield Store(self.addr, 16, apply=lambda: mem.__setitem__(self.addr, (key, value)))


def calls(seed=17):
    return [int(k) for k in zipfian_indices(N_KEYS, N_CALLS, skew=1.05, seed=seed)]


def run_no_memo():
    machine = Machine(scaled_config())
    total = []

    def prog():
        acc = 0
        for key in calls():
            yield Compute(COMPUTE_COST)
            acc += expensive(key)
        total.append(acc)

    machine.spawn(prog(), tile=0)
    return machine.run(), total[0], machine

def run_sw_memo():
    machine = Machine(scaled_config())
    table_base = machine.address_space.alloc(N_KEYS * 16, align=64)
    total = []

    def prog():
        mem = machine.mem
        acc = 0
        for key in calls():
            addr = table_base + key * 16
            yield Load(addr, 16)
            yield Compute(3)
            record = mem.get(addr)
            if record is not None and record[0] == key:
                acc += record[1]
                continue
            yield Compute(COMPUTE_COST)
            value = expensive(key)
            yield Store(addr, 16, apply=lambda a=addr, k=key, v=value: mem.__setitem__(a, (k, v)))
            acc += value
        total.append(acc)

    machine.spawn(prog(), tile=0)
    return machine.run(), total[0], machine


def run_leviathan_memo():
    machine = Machine(scaled_config())
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(MemoEntry, capacity=N_KEYS)
    entries = [alloc.allocate() for _ in range(N_KEYS)]
    total = []

    def prog():
        acc = 0
        for key in calls():
            entry = entries[key]
            future = yield Invoke(
                entry, "lookup", (key,), location=Location.REMOTE, with_future=True
            )
            value = yield WaitFuture(future)
            if value == -1:
                yield Compute(COMPUTE_COST)
                value = expensive(key)
                yield Invoke(
                    entry, "insert", (key, value), location=Location.REMOTE, args_bytes=16
                )
            acc += value
        total.append(acc)

    machine.spawn(prog(), tile=0)
    return machine.run(), total[0], machine


def main():
    plain_cycles, plain_total, _ = run_no_memo()
    sw_cycles, sw_total, sw_machine = run_sw_memo()
    lev_cycles, lev_total, lev_machine = run_leviathan_memo()
    assert plain_total == sw_total == lev_total, "memoized results diverge"

    print(f"calls                 : {N_CALLS} over {N_KEYS} Zipfian keys")
    print(f"no memoization        : {plain_cycles:10,.0f} cycles")
    print(f"core-managed memo     : {sw_cycles:10,.0f} cycles "
          f"({plain_cycles / sw_cycles:.2f}x)")
    print(f"offloaded memo table  : {lev_cycles:10,.0f} cycles "
          f"({plain_cycles / lev_cycles:.2f}x)")
    print(f"memo L1 pollution     : sw {sw_machine.stats['l1.accesses']} core-side "
          f"accesses vs lev {lev_machine.stats['l1.accesses']}")
    print(f"engine lookups        : {lev_machine.stats['engine.tasks']}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""All four paradigms composed: streaming PHI (Sec. V-B4).

The paper's closing argument is that paradigms must *interact*:
"It is possible to further combine PHI with streaming by decoupling the
graph traversal from the cores to improve cache locality."

This example builds exactly that pipeline:

  stream (BDFS traversal on an engine)
    -> consumer core (regular control flow)
      -> task offload (RMW near each vertex's LLC bank)
        -> data-triggered phantom deltas (zero-fill on insert,
           bin-or-apply on evict)

Run:  python examples/multi_paradigm_phi_stream.py
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.graphs import community_graph

N_VERTICES = 1024
N_EDGES = 8192


class DeltaMorph(Morph):
    """PHI's phantom per-vertex deltas."""

    def __init__(self, runtime, n, rank_base):
        self.rank_base = rank_base
        super().__init__(runtime, "llc", n, 8, name="deltas")

    def construct(self, view, index):
        self.machine.mem[self.get_actor_addr(index)] = 0.0
        yield Compute(1)

    def destruct(self, view, index, dirty):
        mem = self.machine.mem
        delta = mem.get(self.get_actor_addr(index), 0.0)
        if dirty and delta:
            addr = self.rank_base + index * 8
            yield Load(addr, 8)
            yield Compute(1)
            yield Store(addr, 8, apply=lambda a=addr, d=delta: mem.__setitem__(
                a, mem.get(a, 0.0) + d))
            mem[self.get_actor_addr(index)] = 0.0


class DeltaActor(Actor):
    SIZE = 8

    @action
    def add(self, env, amount):
        mem = env.machine.mem
        yield Store(self.addr, 8, apply=lambda: mem.__setitem__(
            self.addr, mem.get(self.addr, 0.0) + amount))


class EdgeStream(Stream):
    def __init__(self, runtime, graph, contrib):
        self.graph = graph
        self.contrib = contrib
        super().__init__(
            runtime, object_size=8, buffer_entries=64, consumer_tile=0,
            capacity_hint=graph.n_edges,
        )

    def gen_stream(self, env):
        graph = self.graph
        active = np.ones(graph.n_vertices, dtype=bool)
        for root in range(graph.n_vertices):
            if not active[root]:
                continue
            active[root] = False
            stack = [root]
            while stack:
                dst = stack.pop()
                for src in graph.in_neighbors(dst):
                    src = int(src)
                    yield Compute(4)
                    yield from self.push((src, dst))
                    if len(stack) < 8 and active[src]:
                        active[src] = False
                        stack.append(src)


def main():
    cfg = SystemConfig(
        l1=CacheConfig(size_kb=2, ways=4, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=8, ways=8, tag_latency=2, data_latency=4),
        llc=CacheConfig(size_kb=4, ways=8, tag_latency=3, data_latency=5),
    )
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    graph = community_graph(N_VERTICES, N_EDGES, intra_fraction=0.95, seed=9)

    rng = np.random.default_rng(9)
    contrib = rng.random(N_VERTICES) / np.maximum(graph.out_degree, 1)
    rank_base = machine.address_space.alloc(N_VERTICES * 8, align=64)
    for v in range(N_VERTICES):
        machine.mem[rank_base + v * 8] = 0.0

    morph = DeltaMorph(runtime, N_VERTICES, rank_base)
    actors = []
    for v in range(N_VERTICES):
        actor = DeltaActor()
        actor.addr = morph.get_actor_addr(v)
        actors.append(actor)

    stream = EdgeStream(runtime, graph, contrib)
    stream.start()

    def consumer():
        while True:
            edge = yield from stream.consume()
            if edge is STREAM_END:
                return
            src, dst = edge
            yield Compute(2)
            yield Invoke(
                actors[dst], "add", (float(contrib[src]),), location=Location.REMOTE
            )

    machine.spawn(consumer(), tile=0, name="consumer")
    cycles = machine.run()
    morph.unregister()

    oracle = np.zeros(N_VERTICES)
    dsts = np.repeat(np.arange(N_VERTICES), np.diff(graph.offsets))
    np.add.at(oracle, dsts, contrib[graph.neighbors])
    got = np.array([machine.mem[rank_base + v * 8] for v in range(N_VERTICES)])
    assert np.allclose(got, oracle), "streaming PHI diverged from the oracle"

    print(f"edges processed        : {graph.n_edges}")
    print(f"simulated cycles       : {cycles:,.0f}")
    print("paradigms engaged:")
    print(f"  streaming            : {machine.stats['stream.pushes']} pushes")
    print(f"  task offload         : {machine.stats['engine.tasks']} engine tasks")
    print(f"  data-triggered       : {machine.stats['morph.llc_constructions']} ctors, "
          f"{machine.stats['morph.llc_destructions']} dtors")
    print(f"  long-lived           : the stream producer itself")
    print("rank vector matches the oracle — all paradigms interoperate")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Long-lived near-data workloads: background serialization (SerDes).

Table I's long-lived exemplar: an object is transformed near memory
while the core continues asynchronously [37, 58]. Here a core hands a
batch of records to a serializer pinned low in the hierarchy, keeps
computing, and collects the result through a Future — without the
records ever polluting its private caches.

Run:  python examples/serdes_long_lived.py
"""

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.offload import Invoke
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine

N_RECORDS = 256
RECORD_BYTES = 64


class Serializer(Actor):
    """A long-lived action that walks and serializes a record batch."""

    SIZE = 8

    @action
    def serialize(self, env, src_base, dst_base, count):
        machine = env.machine
        written = 0
        for i in range(count):
            yield Load(src_base + i * RECORD_BYTES, RECORD_BYTES)
            yield Compute(12)  # field walking, varint encoding, ...
            record = machine.mem.get(src_base + i * RECORD_BYTES)
            encoded = f"rec{record}".encode()
            yield Store(dst_base + written, len(encoded))
            machine.mem[dst_base + written] = encoded
            written += len(encoded)
        return written


def main():
    machine = Machine(SystemConfig())
    runtime = Leviathan(machine)

    src_base = machine.address_space.alloc(N_RECORDS * RECORD_BYTES, align=64)
    dst_base = machine.address_space.alloc(N_RECORDS * 16, align=64)
    for i in range(N_RECORDS):
        machine.mem[src_base + i * RECORD_BYTES] = i * 7

    serializer = runtime.allocator_for(Serializer, capacity=4).allocate()
    progress = {"core_work": 0}
    results = {}

    def core_program():
        # Kick off the serializer on a far tile, low in the hierarchy.
        future = yield Invoke(
            serializer,
            "serialize",
            (src_base, dst_base, N_RECORDS),
            tile=machine.config.n_tiles - 1,
            with_future=True,
            args_bytes=24,
        )
        # The core keeps doing useful work while SerDes runs elsewhere.
        for _ in range(300):
            yield Compute(20)
            progress["core_work"] += 1
        results["bytes_written"] = yield WaitFuture(future)

    machine.spawn(core_program(), tile=0, name="core")
    cycles = machine.run()

    # The serialized stream is complete and correct.
    assert machine.mem[dst_base] == b"rec0"
    print(f"records serialized   : {N_RECORDS}")
    print(f"bytes written        : {results['bytes_written']}")
    print(f"core work overlapped : {progress['core_work']} chunks")
    print(f"simulated cycles     : {cycles:,.0f}")
    print(
        "core L1 untouched by records: "
        f"{machine.stats['l1.accesses']} core-side L1 accesses vs "
        f"{machine.stats['engine_l1.accesses']} engine-side"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Near-cache data transformation: Fig. 15 of the paper, runnable.

A compressed image (base + delta per channel) is stored in memory;
pixels decompress *as their lines enter the L2*, so the core reuses
decompressed data from its private caches and never runs the
decompression arithmetic itself.

Run:  python examples/near_cache_decompression.py
"""

import numpy as np

from repro.core.morph import Morph
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine

N_PIXELS = 4096
N_ACCESSES = 8192
CHANNELS = 3


class PixelDecompressor(Morph):
    """Fig. 15: ``class Decompressor extends Leviathan::Morph<Pixel>``.

    The actor is a 6-byte pixel (3x uint16); Leviathan pads it to 8
    bytes so the constructor always sees whole objects.
    """

    def __init__(self, runtime, bases, deltas, base_addrs, delta_addrs):
        self.bases = bases
        self.deltas = deltas
        self.base_addrs = base_addrs
        self.delta_addrs = delta_addrs
        super().__init__(
            runtime, level="l2", n_actors=N_PIXELS, object_size=6, name="decompressor"
        )

    def construct(self, view, index):
        colors = []
        for c in range(CHANNELS):
            yield Load(self.base_addrs[c] + (index >> 3) * 2, 2)
            yield Load(self.delta_addrs[c] + index, 1)
            base = int(self.bases[c][index >> 3])
            delta = int(self.deltas[c][index])
            mantissa = delta & 0b1111
            exponent = delta >> 4
            colors.append(base + (mantissa << exponent))
        yield Compute(20)
        self.machine.mem[self.get_actor_addr(index)] = tuple(colors)


def main():
    machine = Machine(SystemConfig())
    runtime = Leviathan(machine)
    rng = np.random.default_rng(0)

    bases = rng.integers(0, 4096, size=(CHANNELS, N_PIXELS // 8 + 1))
    deltas = rng.integers(0, 256, size=(CHANNELS, N_PIXELS))
    base_addrs = [machine.address_space.alloc(bases.shape[1] * 2, align=64) for _ in range(CHANNELS)]
    delta_addrs = [machine.address_space.alloc(N_PIXELS, align=64) for _ in range(CHANNELS)]

    morph = PixelDecompressor(runtime, bases, deltas, base_addrs, delta_addrs)
    indices = rng.integers(0, N_PIXELS, size=N_ACCESSES)
    sums = []

    def consumer():
        total = 0
        for idx in indices:
            addr = morph.get_actor_addr(int(idx))
            box = []
            yield Load(addr, 6, apply=lambda a=addr, b=box: b.append(machine.mem[a]))
            yield Compute(2)
            total += sum(box[0])
        sums.append(total)

    machine.spawn(consumer(), tile=0, name="consumer")
    cycles = machine.run()

    # Validate against direct decompression.
    expected = 0
    for idx in indices:
        for c in range(CHANNELS):
            delta = int(deltas[c][idx])
            expected += int(bases[c][idx >> 3]) + ((delta & 0b1111) << (delta >> 4))
    assert sums[0] == expected, "decompressed values diverge from the oracle"

    constructions = machine.stats["morph.l2_constructions"]
    print(f"accesses                 : {N_ACCESSES}")
    print(f"line constructions       : {constructions}")
    print(f"decompressions avoided   : {N_ACCESSES - constructions * 8} (reuse!)")
    print(f"simulated cycles         : {cycles:,.0f}")
    print(f"checksum                 : {sums[0]} (matches software decompression)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Remote memory operations: offloaded atomics vs. fenced atomics.

The scenario that motivates PHI (Sec. IV): many cores hammer a small
set of shared counters. With conventional fenced atomics the hot lines
ping-pong between private caches and every update pays a fence; with
task offload the updates execute at the counters' LLC banks and the
cores just fire invokes.

Run:  python examples/remote_memory_ops.py
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import AtomicRMW, Compute, Store
from repro.sim.system import Machine

N_COUNTERS = 64
N_THREADS = 16
UPDATES_PER_THREAD = 256


def scaled_config():
    cfg = SystemConfig(
        l1=CacheConfig(size_kb=2, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=4, ways=4, tag_latency=2, data_latency=4),
        llc=CacheConfig(size_kb=2, ways=8, tag_latency=3, data_latency=5),
    )
    return cfg


class SharedCounter(Actor):
    SIZE = 8

    @action
    def add(self, env, amount):
        mem = env.machine.mem
        yield Compute(1)
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0) + amount),
        )


def pick_targets(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, N_COUNTERS, size=UPDATES_PER_THREAD)


def run_fenced_baseline():
    machine = Machine(scaled_config())
    base = machine.address_space.alloc(N_COUNTERS * 8, align=64)
    for i in range(N_COUNTERS):
        machine.mem[base + i * 8] = 0

    def thread(seed):
        mem = machine.mem
        for target in pick_targets(seed):
            addr = base + int(target) * 8
            yield Compute(2)
            yield AtomicRMW(
                addr,
                8,
                fenced=True,
                apply=lambda a=addr: mem.__setitem__(a, mem.get(a, 0) + 1),
            )

    for t in range(N_THREADS):
        machine.spawn(thread(t), tile=t % machine.config.n_tiles, name=f"fenced{t}")
    cycles = machine.run()
    totals = sum(machine.mem[base + i * 8] for i in range(N_COUNTERS))
    return machine, cycles, totals


def run_offloaded():
    machine = Machine(scaled_config())
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(SharedCounter, capacity=N_COUNTERS)
    counters = [alloc.allocate() for _ in range(N_COUNTERS)]

    def thread(seed):
        for target in pick_targets(seed):
            yield Compute(2)
            yield Invoke(counters[int(target)], "add", (1,), location=Location.REMOTE)

    for t in range(N_THREADS):
        machine.spawn(thread(t), tile=t % machine.config.n_tiles, name=f"rmo{t}")
    cycles = machine.run()
    totals = sum(machine.mem.get(c.addr, 0) for c in counters)
    return machine, cycles, totals


def main():
    fenced_machine, fenced_cycles, fenced_total = run_fenced_baseline()
    rmo_machine, rmo_cycles, rmo_total = run_offloaded()
    expected = N_THREADS * UPDATES_PER_THREAD
    assert fenced_total == expected, "fenced baseline lost updates"
    assert rmo_total == expected, "offloaded version lost updates"

    print(f"updates applied          : {expected}")
    print(f"fenced atomics           : {fenced_cycles:10,.0f} cycles")
    print(f"offloaded RMOs           : {rmo_cycles:10,.0f} cycles")
    print(f"speedup                  : {fenced_cycles / rmo_cycles:.2f}x")
    print(
        "fences eliminated        : "
        f"{fenced_machine.stats['core.fences']} -> {rmo_machine.stats['core.fences']}"
    )
    print(
        "coherence ping-pongs     : "
        f"{fenced_machine.stats['coherence.ping_pongs']} -> "
        f"{rmo_machine.stats['coherence.ping_pongs']}"
    )
    print(
        "NoC flit-hops            : "
        f"{fenced_machine.stats['noc.flit_hops']} -> {rmo_machine.stats['noc.flit_hops']}"
    )


if __name__ == "__main__":
    main()

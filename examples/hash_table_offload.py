#!/usr/bin/env python
"""Pointer chasing with chained task offload (Fig. 17).

A hash table resolves collisions with linked lists. Lookups are
offloaded: a ``lookup`` task runs near the head node and re-invokes
itself near each next node in continuation-passing style, so the chain
walk happens inside the LLC instead of round-tripping to the core.

Run:  python examples/hash_table_offload.py
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine

N_BUCKETS = 32
NODES_PER_BUCKET = 16
N_LOOKUPS = 200


class Node(Actor):
    """Fig. 17: key, value, metadata, next -- 64 bytes, no manual padding."""

    SIZE = 64

    @action
    def lookup(self, env, key, future):
        yield Load(self.addr, self.SIZE)
        yield Compute(6)
        record = env.machine.mem[self.addr]
        if record["key"] == key:
            return record["value"]
        if record["next"] is None:
            return -1
        yield Invoke(
            record["next"], "lookup", (key, future), future=future, args_bytes=16
        )
        return None


def main():
    cfg = SystemConfig(
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4),
        llc=CacheConfig(size_kb=4, ways=8, tag_latency=3, data_latency=5),
    )
    machine = Machine(cfg)
    runtime = Leviathan(machine)

    alloc = runtime.allocator_for(Node, capacity=N_BUCKETS * NODES_PER_BUCKET)
    rng = np.random.default_rng(11)
    nodes = [alloc.allocate() for _ in range(N_BUCKETS * NODES_PER_BUCKET)]
    rng.shuffle(nodes)

    buckets = []
    for b in range(N_BUCKETS):
        chain = nodes[b * NODES_PER_BUCKET : (b + 1) * NODES_PER_BUCKET]
        for i, node in enumerate(chain):
            machine.mem[node.addr] = {
                "key": b * 1000 + i,
                "value": (b * 1000 + i) * 3,
                "next": chain[i + 1] if i + 1 < len(chain) else None,
            }
        buckets.append(chain[0])

    keys = [
        int(rng.integers(0, N_BUCKETS)) * 1000 + int(rng.integers(0, NODES_PER_BUCKET))
        for _ in range(N_LOOKUPS)
    ]
    found = []

    def client():
        for key in keys:
            future = Future(machine, 0)
            yield Invoke(
                buckets[key // 1000],
                "lookup",
                (key, future),
                location=Location.DYNAMIC,
                future=future,
                args_bytes=16,
            )
            value = yield WaitFuture(future)
            found.append(value)

    machine.spawn(client(), tile=0, name="client")
    cycles = machine.run()

    assert found == [k * 3 for k in keys], "lookups returned wrong values"
    hops = machine.stats["engine.tasks"] + machine.stats["invoke.inline_at_core"]
    print(f"lookups               : {N_LOOKUPS} (all values correct)")
    print(f"chain hops offloaded  : {hops}")
    print(f"avg hops per lookup   : {hops / N_LOOKUPS:.1f}")
    print(f"simulated cycles      : {cycles:,.0f}")
    print(f"NoC flit-hops         : {machine.stats['noc.flit_hops']:,}")


if __name__ == "__main__":
    main()

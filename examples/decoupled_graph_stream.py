#!/usr/bin/env python
"""Decoupled graph traversal with a Leviathan stream (Fig. 19).

A near-data producer walks a community-structured graph in bounded-DFS
order and streams edges to the consumer core, which runs one PageRank
edge phase over them. The consumer's control flow is a simple loop --
the hard-to-predict traversal lives on the engine.

Run:  python examples/decoupled_graph_stream.py
"""

import numpy as np

from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import SystemConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.graphs import community_graph

N_VERTICES = 1024
N_EDGES = 8192
BDFS_DEPTH = 8


class EdgeStream(Stream):
    """``class LeviathanHATS extends Leviathan::Stream<Edge>``."""

    def __init__(self, runtime, graph, neighbors_base, active_base):
        self.graph = graph
        self.neighbors_base = neighbors_base
        self.active_base = active_base
        super().__init__(
            runtime,
            object_size=8,
            buffer_entries=64,
            consumer_tile=0,
            capacity_hint=graph.n_edges,
        )

    def gen_stream(self, env):
        graph = self.graph
        active = np.ones(graph.n_vertices, dtype=bool)
        emitted = 0
        for root in range(graph.n_vertices):
            if not active[root]:
                continue
            active[root] = False
            stack = [root]
            while stack:
                dst = stack.pop()
                for src in graph.in_neighbors(dst):
                    src = int(src)
                    yield Load(self.neighbors_base + emitted * 4, 4)
                    yield Load(self.active_base + src // 8, 1)
                    yield Compute(4)
                    yield from self.push((src, dst))
                    emitted += 1
                    if len(stack) < BDFS_DEPTH and active[src]:
                        active[src] = False
                        stack.append(src)


def main():
    machine = Machine(SystemConfig())
    runtime = Leviathan(machine)
    graph = community_graph(N_VERTICES, N_EDGES, intra_fraction=0.95, seed=5)

    space = machine.address_space
    contrib_base = space.alloc(N_VERTICES * 8, align=64)
    rank_base = space.alloc(N_VERTICES * 8, align=64)
    neighbors_base = space.alloc(N_EDGES * 4, align=64)
    active_base = space.alloc(N_VERTICES // 8, align=64)

    rng = np.random.default_rng(5)
    contrib = rng.random(N_VERTICES) / np.maximum(graph.out_degree, 1)
    ranks = {v: 0.0 for v in range(N_VERTICES)}

    stream = EdgeStream(runtime, graph, neighbors_base, active_base)
    stream.start()
    processed = []

    def consumer():
        count = 0
        while True:
            edge = yield from stream.consume()
            if edge is STREAM_END:
                break
            src, dst = edge
            yield Load(contrib_base + src * 8, 8)
            yield Compute(3)
            yield Store(rank_base + dst * 8, 8)
            ranks[dst] += contrib[src]
            count += 1
        processed.append(count)

    machine.spawn(consumer(), tile=0, name="consumer")
    cycles = machine.run()

    oracle = np.zeros(N_VERTICES)
    dsts = np.repeat(np.arange(N_VERTICES), np.diff(graph.offsets))
    np.add.at(oracle, dsts, contrib[graph.neighbors])
    got = np.array([ranks[v] for v in range(N_VERTICES)])
    assert np.allclose(got, oracle), "stream-ordered PageRank diverged"
    assert processed[0] == graph.n_edges

    print(f"edges streamed         : {processed[0]}")
    print(f"simulated cycles       : {cycles:,.0f}")
    print(f"consumer mispredicts   : {machine.stats['core.branch_mispredictions']}")
    print(f"producer ran ahead     : {machine.stats['stream.push_blocks']} buffer-full blocks")
    print(f"pop messages           : {machine.stats['stream.pop_messages']}")
    print("rank vector matches the CSR-order oracle")


if __name__ == "__main__":
    main()

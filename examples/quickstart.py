#!/usr/bin/env python
"""Quickstart: a Leviathan machine, an actor, and one of each paradigm.

Builds the simulated multicore, attaches the Leviathan runtime, and
walks the four NDC paradigms on a toy workload:

1. task offload      -- ``Invoke`` an actor's action near its data;
2. long-lived        -- pin a background task on a specific tile;
3. data-triggered    -- a Morph whose constructor fills phantom objects;
4. streaming         -- a producer on an engine feeding a consumer core.

Run:  python examples/quickstart.py
"""

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import SystemConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine


# ----------------------------------------------------------------------
# 1 + 2: an actor with offloadable actions (Fig. 2 of the paper)
# ----------------------------------------------------------------------
class Counter(Actor):
    """Data (an 8-byte count) plus near-data actions."""

    SIZE = 8

    @action
    def add(self, env, amount):
        """A remote memory operation: executes near the counter."""
        mem = env.machine.mem
        yield Compute(1)
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0) + amount),
        )

    @action
    def read(self, env):
        """Returning a value fills the invoke's Future."""
        yield Load(self.addr, 8)
        return env.machine.mem.get(self.addr, 0)


# ----------------------------------------------------------------------
# 3: a data-triggered Morph -- squares materialize on demand
# ----------------------------------------------------------------------
class Squares(Morph):
    """Phantom array whose constructor computes ``index**2`` near-cache."""

    def construct(self, view, index):
        yield Compute(3)
        self.machine.mem[self.get_actor_addr(index)] = index * index


# ----------------------------------------------------------------------
# 4: a stream -- a near-data producer feeding the core
# ----------------------------------------------------------------------
class Fibonacci(Stream):
    def __init__(self, runtime, count):
        self.count = count
        super().__init__(runtime, object_size=8, buffer_entries=32, consumer_tile=0)

    def gen_stream(self, env):
        a, b = 0, 1
        for _ in range(self.count):
            yield Compute(2)
            yield from self.push(a)
            a, b = b, a + b


def main():
    machine = Machine(SystemConfig())
    runtime = Leviathan(machine)

    counter = runtime.allocator_for(Counter, capacity=16).allocate()
    squares = Squares(runtime, level="l2", n_actors=64, object_size=8)
    fib = Fibonacci(runtime, count=20)
    fib.start()

    results = {}

    def program():
        # -- task offload: 100 adds execute near the counter's LLC bank.
        for _ in range(100):
            yield Invoke(counter, "add", (1,), location=Location.DYNAMIC)

        # -- data-triggered: loading phantom addresses runs constructors.
        total = 0
        for i in range(0, 64, 7):
            addr = squares.get_actor_addr(i)
            box = []
            yield Load(addr, 8, apply=lambda a=addr, b=box: b.append(machine.mem[a]))
            total += box[0]
        results["square_sum"] = total

        # -- streaming: consume the decoupled Fibonacci producer.
        fibs = []
        while True:
            value = yield from fib.consume()
            if value is STREAM_END:
                break
            fibs.append(value)
        results["fibs"] = fibs

        # -- and read the counter back through a Future.
        future = yield Invoke(counter, "read", with_future=True)
        results["count"] = yield WaitFuture(future)

    machine.spawn(program(), tile=0, name="main")
    cycles = machine.run()

    print(f"simulated cycles : {cycles:,.0f}")
    print(f"counter          : {results['count']}")
    print(f"sum of squares   : {results['square_sum']}")
    print(f"fibonacci stream : {results['fibs']}")
    print(f"dynamic energy   : {machine.energy_pj() / 1e6:.2f} uJ")
    print(f"engine tasks     : {machine.stats['engine.tasks']}")
    print(f"constructions    : {machine.stats['morph.l2_constructions']}")
    print(f"stream pushes    : {machine.stats['stream.pushes']}")
    assert results["count"] == 100
    assert results["fibs"][:6] == [0, 1, 1, 2, 3, 5]


if __name__ == "__main__":
    main()

"""Fig. 22: invoke-buffer sensitivity (PHI)."""

from repro.experiments import sensitivity
from benchmarks.conftest import run_experiment


def test_fig22_invoke_buffer(benchmark):
    run_experiment(benchmark, sensitivity.run_fig22)

"""Fig. 21: HATS performance breakdown (DRAM, mispredicts, engine work)."""

from repro.experiments import figures
from benchmarks.conftest import run_experiment


def test_fig21_hats_breakdown(benchmark):
    run_experiment(benchmark, figures.run_fig21)

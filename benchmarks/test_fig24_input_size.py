"""Fig. 24: input-size sensitivity (hash table vs. LLC capacity)."""

from repro.experiments import sensitivity
from benchmarks.conftest import run_experiment


def test_fig24_input_size(benchmark):
    run_experiment(benchmark, sensitivity.run_fig24)

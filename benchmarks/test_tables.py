"""Tables I-V: taxonomy, actions, microarchitecture, area, parameters."""

from repro.experiments import tables
from benchmarks.conftest import run_experiment


def test_table1_taxonomy(benchmark):
    run_experiment(benchmark, tables.run_table1)


def test_table2_actions(benchmark):
    run_experiment(benchmark, tables.run_table2)


def test_table3_microarchitecture(benchmark):
    run_experiment(benchmark, tables.run_table3)


def test_table4_area_overhead(benchmark):
    run_experiment(benchmark, tables.run_table4)


def test_table5_system_parameters(benchmark):
    run_experiment(benchmark, tables.run_table5)

"""Benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures. The
simulations are deterministic, so each runs exactly once
(``benchmark.pedantic(rounds=1, iterations=1)``); the *measured wall
time* is the cost of regenerating the artifact, and the benchmark's
``extra_info`` carries the reproduced rows so results land in the
pytest-benchmark JSON.
"""


def run_experiment(benchmark, runner, **kwargs):
    """Run one experiment under pytest-benchmark and check its shape."""
    experiment = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["paper_reference"] = experiment.paper_reference
    benchmark.extra_info["rows"] = experiment.rows
    benchmark.extra_info["expectations"] = [str(e) for e in experiment.expectations]
    experiment.check()
    return experiment

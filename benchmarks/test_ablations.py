"""Ablations of design choices the paper calls out in the text."""

from repro.experiments import ablations
from benchmarks.conftest import run_experiment


def test_ablation_mc_fifo_cache(benchmark):
    run_experiment(benchmark, ablations.run_mc_cache)


def test_ablation_dynamic_migration(benchmark):
    run_experiment(benchmark, ablations.run_migration)


def test_ablation_dram_compaction(benchmark):
    run_experiment(benchmark, ablations.run_compaction)


def test_ablation_near_memory_engines(benchmark):
    run_experiment(benchmark, ablations.run_near_memory)

"""Fig. 16: near-cache data transformation (decompression)."""

from repro.experiments import figures
from benchmarks.conftest import run_experiment


def test_fig16_decompression(benchmark):
    experiment = run_experiment(benchmark, figures.run_fig16)
    speedups = {r["variant"]: r["speedup"] for r in experiment.rows}
    benchmark.extra_info["leviathan_speedup"] = speedups["leviathan"]
    benchmark.extra_info["paper_speedup"] = 2.4

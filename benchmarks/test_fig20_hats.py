"""Fig. 20: decoupled graph traversal (HATS)."""

from repro.experiments import figures
from benchmarks.conftest import run_experiment


def test_fig20_hats(benchmark):
    experiment = run_experiment(benchmark, figures.run_fig20)
    speedups = {r["variant"]: r["speedup"] for r in experiment.rows}
    benchmark.extra_info["leviathan_speedup"] = speedups["leviathan"]
    benchmark.extra_info["paper_speedup"] = 1.7

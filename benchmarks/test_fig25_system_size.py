"""Fig. 25: system-size sensitivity (hash table, 4-64 tiles)."""

from repro.experiments import sensitivity
from benchmarks.conftest import run_experiment


def test_fig25_system_size(benchmark):
    run_experiment(benchmark, sensitivity.run_fig25)

"""Fig. 23: stream-buffer sensitivity (HATS)."""

from repro.experiments import sensitivity
from benchmarks.conftest import run_experiment


def test_fig23_stream_buffer(benchmark):
    run_experiment(benchmark, sensitivity.run_fig23)

"""Fig. 5: PHI / commutative scatter-updates (PageRank)."""

from repro.experiments import figures
from benchmarks.conftest import run_experiment


def test_fig5_phi_pagerank(benchmark):
    experiment = run_experiment(benchmark, figures.run_fig5)
    # Surface the headline factors in the benchmark record.
    speedups = {r["variant"]: r["speedup"] for r in experiment.rows}
    benchmark.extra_info["leviathan_speedup"] = speedups["leviathan"]
    benchmark.extra_info["paper_speedup"] = 3.7

"""Wall-clock smoke benchmark: catch simulator slowdowns early.

Times the hash-table workload (both the plain-multicore baseline and
the Leviathan variant, so both the core path and the engine/offload
path are covered) and fails if either regresses more than 2x over the
recorded baseline in ``sim_speed_baseline.json``.

The recorded numbers are deliberately generous (about twice a warm run
on a development machine), so the guard only trips on real structural
regressions -- an accidentally-quadratic wait queue, per-access
allocation on the zero-subscriber event path -- not on runner jitter.
To re-record after an intentional change, run this file directly::

    PYTHONPATH=src python benchmarks/test_sim_speed.py --record
"""

import json
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).with_name("sim_speed_baseline.json")

#: Fail when a run exceeds ``REGRESSION_FACTOR`` x the recorded time.
REGRESSION_FACTOR = 2.0

#: Best-of-N to shed scheduler noise and warmup.
TRIALS = 3


def _load_baseline():
    return json.loads(BASELINE_PATH.read_text())


def _time_variant(runner, params, n_tiles):
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        runner(params, n_tiles=n_tiles)
        best = min(best, time.perf_counter() - start)
    return best


def _measure(baseline):
    from repro.workloads import hashtable

    params = baseline["params"]
    n_tiles = baseline["n_tiles"]
    return {
        "baseline_s": _time_variant(hashtable.run_baseline, params, n_tiles),
        "leviathan_s": _time_variant(hashtable.run_leviathan, params, n_tiles),
    }


def test_sim_speed_smoke():
    baseline = _load_baseline()
    measured = _measure(baseline)
    for key, seconds in measured.items():
        budget = baseline[key] * REGRESSION_FACTOR
        assert seconds <= budget, (
            f"simulator speed regression: {key} took {seconds:.2f}s, "
            f"budget {budget:.2f}s ({REGRESSION_FACTOR}x the recorded "
            f"{baseline[key]:.2f}s baseline). If this slowdown is intentional, "
            f"re-record with: PYTHONPATH=src python benchmarks/test_sim_speed.py --record"
        )


def test_sim_speed_with_telemetry_detached():
    """Telemetry emit sites must be free when nothing subscribes.

    Every telemetry emit site is guarded by ``bus.active``; with no
    session installed the per-site cost is one attribute load and a
    branch. This guard runs the same workloads against the same
    baseline budget, so an unguarded emit site (or anything else that
    makes the detached path allocate) trips it even when the plain
    smoke test's margins absorb the slowdown.
    """
    from repro.sim.telemetry.session import active_session

    assert active_session() is None, "a TelemetrySession leaked into this test"
    baseline = _load_baseline()
    measured = _measure(baseline)
    for key, seconds in measured.items():
        budget = baseline[key] * REGRESSION_FACTOR
        assert seconds <= budget, (
            f"emit-site overhead with telemetry detached: {key} took "
            f"{seconds:.2f}s, budget {budget:.2f}s ({REGRESSION_FACTOR}x the "
            f"recorded {baseline[key]:.2f}s baseline). Check that every "
            f"telemetry emit site is guarded by events.active."
        )


def test_sim_speed_with_faults_detached():
    """Fault hooks must be free when no plan is attached.

    Every fault hook site (NoC send, DRAM access, engine acceptance,
    the watchdog counter) is guarded by a ``faults is None`` check or an
    integer compare; with no :class:`~repro.sim.faults.FaultSession`
    installed the simulator must fit the same budget as the recorded
    baseline. An unguarded hook (or a detached plan that still pays
    per-event costs) trips this even when the plain smoke test's
    margins absorb it.
    """
    from repro.sim.faults import active_session

    assert active_session() is None, "a FaultSession leaked into this test"
    baseline = _load_baseline()
    measured = _measure(baseline)
    for key, seconds in measured.items():
        budget = baseline[key] * REGRESSION_FACTOR
        assert seconds <= budget, (
            f"hook overhead with faults detached: {key} took "
            f"{seconds:.2f}s, budget {budget:.2f}s ({REGRESSION_FACTOR}x the "
            f"recorded {baseline[key]:.2f}s baseline). Check that every "
            f"fault hook site is guarded by 'faults is None'."
        )


if __name__ == "__main__":
    import sys

    baseline = _load_baseline()
    measured = _measure(baseline)
    print({k: round(v, 3) for k, v in measured.items()})
    if "--record" in sys.argv:
        # Record at 2x the measurement: generous headroom for CI runners.
        baseline.update({k: round(2 * v, 2) for k, v in measured.items()})
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"recorded to {BASELINE_PATH}")

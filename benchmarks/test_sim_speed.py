"""Wall-clock smoke guard driven by the host-performance lab.

Budgets live in ``bench_baseline.json`` -- one entry per benchmark of
the :mod:`repro.perf.registry`, recorded at ~2x a warm run on a
development machine so the guard only trips on real structural
regressions (an accidentally-quadratic wait queue, per-access
allocation on a zero-subscriber path), not on runner jitter.

One parametrized test covers the three configurations that must all fit
the same budget:

- ``plain``: the simulator as the experiment harness runs it;
- ``telemetry-detached``: every telemetry emit site is guarded by
  ``bus.active``, so with no session installed the per-site cost is one
  attribute load and a branch;
- ``faults-detached``: every fault hook site is guarded by a
  ``faults is None`` check (or an integer compare in the watchdog), so
  a machine without a :class:`~repro.sim.faults.FaultSession` pays
  nothing.

To re-record after an intentional change::

    PYTHONPATH=src python benchmarks/test_sim_speed.py --record

which re-runs the *full* benchmark registry and rewrites
``bench_baseline.json`` (the same file CI's bench job compares against;
see docs/performance.md).
"""

import json
from pathlib import Path

import pytest

BASELINE_PATH = Path(__file__).with_name("bench_baseline.json")

#: Fail when a run exceeds ``REGRESSION_FACTOR`` x the recorded budget.
REGRESSION_FACTOR = 2.0

#: Best-of-N to shed scheduler noise and warmup.
TRIALS = 3

#: The macro benchmarks the smoke guard times on every tier-1 run (the
#: full registry runs in CI's bench job; these two cover the core path
#: and the engine/offload path like the original smoke test did).
SMOKE_BENCHMARKS = ("fig18.hashtable_baseline", "fig18.hashtable_leviathan")

_MODE_HINTS = {
    "plain": (
        "If this slowdown is intentional, re-record with: "
        "PYTHONPATH=src python benchmarks/test_sim_speed.py --record"
    ),
    "telemetry-detached": (
        "Check that every telemetry emit site is guarded by events.active."
    ),
    "faults-detached": (
        "Check that every fault hook site is guarded by 'faults is None'."
    ),
}


def _load_budgets():
    return json.loads(BASELINE_PATH.read_text())["benchmarks"]


def _assert_detached(mode):
    """No observer session may leak into a detached-mode measurement."""
    if mode == "telemetry-detached":
        from repro.sim.telemetry.session import active_session

        assert active_session() is None, "a TelemetrySession leaked into this test"
    elif mode == "faults-detached":
        from repro.sim.faults import active_session

        assert active_session() is None, "a FaultSession leaked into this test"


def _best_of(name, trials=TRIALS):
    from repro.perf import registry
    from repro.perf.bench import run_benchmark

    result = run_benchmark(registry.get(name), trials=trials, warmup=0)
    return min(result.trials_s)


@pytest.mark.parametrize("mode", sorted(_MODE_HINTS))
def test_sim_speed(mode):
    _assert_detached(mode)
    budgets = _load_budgets()
    for name in SMOKE_BENCHMARKS:
        budget = budgets[name]["median_s"] * REGRESSION_FACTOR
        measured = _best_of(name)
        assert measured <= budget, (
            f"simulator speed regression ({mode}): {name} took "
            f"{measured:.2f}s, budget {budget:.2f}s ({REGRESSION_FACTOR}x the "
            f"recorded {budgets[name]['median_s']:.2f}s baseline). "
            f"{_MODE_HINTS[mode]}"
        )


#: Budget = BUDGET_FACTOR x the measured median at record time. With
#: REGRESSION_FACTOR 2.0 on top, the guard trips at ~5x a warm run on
#: the recording machine -- room for slower CI runners, tight enough to
#: catch structural regressions.
BUDGET_FACTOR = 2.5


def record(trials=TRIALS):
    """Re-record ``bench_baseline.json`` from the full registry."""
    from repro.perf import registry
    from repro.perf.bench import run_benchmark
    from repro.perf.fingerprint import fingerprint

    benchmarks = {}
    for name in registry.names():
        res = run_benchmark(registry.get(name), trials=trials, warmup=1)
        budget = round(BUDGET_FACTOR * res.median_s, 4)
        benchmarks[name] = {
            "kind": res.kind,
            "unit": res.unit,
            "units": res.units,
            "median_s": budget,
            "q1_s": round(0.9 * budget, 4),
            "q3_s": round(1.1 * budget, 4),
            "measured_median_s": round(res.median_s, 4),
            "measured_steps_per_sec": round(res.steps_per_sec, 1),
        }
        print(f"{name}: measured {res.median_s:.4f}s -> budget {budget:.4f}s")
    payload = {
        "schema": 1,
        "kind": "leviathan-bench-baseline",
        "comment": (
            "Committed per-benchmark budgets for benchmarks/test_sim_speed.py "
            "and CI's `bench --compare`. median_s is a BUDGET recorded at "
            "~2.5x a warm dev-machine run; the smoke guard fails only beyond "
            "REGRESSION_FACTOR x these, i.e. >~5x a typical dev machine. "
            "Re-record: PYTHONPATH=src python benchmarks/test_sim_speed.py --record"
        ),
        "recorded_on": fingerprint(),
        "benchmarks": benchmarks,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"recorded to {BASELINE_PATH}")


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        record()
    else:
        budgets = _load_budgets()
        for name in SMOKE_BENCHMARKS:
            measured = _best_of(name)
            print(
                f"{name}: best-of-{TRIALS} {measured:.3f}s "
                f"(budget {budgets[name]['median_s'] * REGRESSION_FACTOR:.3f}s)"
            )

"""Fig. 18: hash-table lookups across object sizes."""

from repro.experiments import figures
from benchmarks.conftest import run_experiment


def test_fig18_hashtable_sizes(benchmark):
    experiment = run_experiment(benchmark, figures.run_fig18)
    lev = [r["speedup"] for r in experiment.rows if r["variant"] == "leviathan"]
    benchmark.extra_info["leviathan_speedups_by_size"] = lev
    benchmark.extra_info["paper_speedup"] = "up to 2.0x"
